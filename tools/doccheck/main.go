// doccheck is the documentation gate (`make doccheck`, part of tier-1). It
// fails (exit 1) when:
//
//   - any Go package in the repository lacks a package-level doc comment, or
//   - any of the top-level doc files (README.md, ARCHITECTURE.md, DESIGN.md,
//     EXPERIMENTS.md) references a CLI flag that no binary under cmd/
//     registers — the drift that appears when a flag is renamed but its
//     documentation is not.
//
// A package is documented when at least one of its non-test files carries a
// doc comment on the package clause. Test-only packages (*_test) and
// testdata trees are exempt.
//
// Flag references are `-name` tokens (lowercase, possibly hyphenated,
// preceded by whitespace, a backtick, or a parenthesis) anywhere in a doc
// file; registered flags are collected by AST-walking every flag.String /
// flag.Bool / ...Var registration under cmd/ and tools/. Flags of standard
// tools that doc examples legitimately pass (-race, -bench, -run, curl -d,
// ...) are allowlisted.
//
// Usage:
//
//	go run ./tools/doccheck [root]
//
// root defaults to ".". The tool parses package clauses and comments only
// for the doc-comment check (fast; no type checking), and prints one line
// per violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	undocumented, err := run(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(1)
	}
	stale, err := checkDocFlags(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(1)
	}
	for _, dir := range undocumented {
		fmt.Printf("doccheck: package in %s has no package doc comment\n", dir)
	}
	for _, s := range stale {
		fmt.Printf("doccheck: %s\n", s)
	}
	if len(undocumented)+len(stale) > 0 {
		os.Exit(1)
	}
}

// docFiles are the top-level documents whose flag references must resolve.
var docFiles = []string{"README.md", "ARCHITECTURE.md", "DESIGN.md", "EXPERIMENTS.md"}

// flagMethods are the flag-package registration calls whose first string
// argument names a flag. The Var variants put the name second, but it is
// still the first *string literal* argument, which is what collectFlags
// takes.
var flagMethods = map[string]bool{
	"Bool": true, "BoolVar": true, "Duration": true, "DurationVar": true,
	"Float64": true, "Float64Var": true, "Int": true, "IntVar": true,
	"Int64": true, "Int64Var": true, "String": true, "StringVar": true,
	"Uint": true, "UintVar": true, "Uint64": true, "Uint64Var": true,
	"TextVar": true, "Func": true,
}

// externalFlags are flags of tools outside this repository that doc
// examples legitimately pass: go test / go build and curl.
var externalFlags = map[string]bool{
	"bench": true, "benchmem": true, "count": true, "cover": true,
	"coverprofile": true, "d": true, "h": true, "help": true, "json": true,
	"ldflags": true, "list": true, "race": true, "run": true, "short": true,
	"tags": true, "timeout": true, "v": true,
}

// flagToken matches a CLI-flag reference in prose or a code span: a dash at
// a word start — optionally opening an inline code span — followed by a
// lowercase flag name. Mid-word dashes ("false-disable", "2e-08") and
// suffixes hanging off a closing backtick ("`Host`-attached") never match.
var flagToken = regexp.MustCompile("(^|[\\s(])`?-([a-z][a-z0-9-]*)")

// collectFlags AST-walks every non-test Go file under root/cmd and
// root/tools and returns the set of registered flag names.
func collectFlags(root string) (map[string]bool, error) {
	flags := map[string]bool{}
	for _, sub := range []string{"cmd", "tools"} {
		dir := filepath.Join(root, sub)
		if _, err := os.Stat(dir); os.IsNotExist(err) {
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return err
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return fmt.Errorf("%s: %v", path, err)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !flagMethods[sel.Sel.Name] {
					return true
				}
				for _, arg := range call.Args {
					if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
						flags[strings.Trim(lit.Value, `"`)] = true
						break
					}
				}
				return true
			})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return flags, nil
}

// checkDocFlags returns one complaint per doc line referencing a flag that
// no binary registers.
func checkDocFlags(root string) ([]string, error) {
	flags, err := collectFlags(root)
	if err != nil {
		return nil, err
	}
	var stale []string
	for _, name := range docFiles {
		path := filepath.Join(root, name)
		buf, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(buf), "\n") {
			for _, m := range flagToken.FindAllStringSubmatch(line, -1) {
				ref := m[2]
				if !flags[ref] && !externalFlags[ref] {
					stale = append(stale, fmt.Sprintf("%s:%d: flag -%s is not registered by any binary under cmd/ or tools/", name, i+1, ref))
				}
			}
		}
	}
	return stale, nil
}

// run returns the directories holding packages without a doc comment.
func run(root string) ([]string, error) {
	// dirs maps a directory to whether any of its non-test files documents
	// the package; presence with value false means Go files were seen but
	// no doc comment yet.
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (len(name) > 1 && (name[0] == '.' || name[0] == '_')) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			return nil
		}
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			dirs[dir] = true
		} else if _, ok := dirs[dir]; !ok {
			dirs[dir] = false
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var undocumented []string
	for dir, ok := range dirs {
		if !ok {
			undocumented = append(undocumented, dir)
		}
	}
	sort.Strings(undocumented)
	return undocumented, nil
}
