package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsUndocumentedPackage(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "good", "doc.go"), "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(root, "good", "extra.go"), "package good\n")
	write(t, filepath.Join(root, "bad", "bad.go"), "package bad\n")
	write(t, filepath.Join(root, "bad", "bad_test.go"), "// Package bad — test files don't count.\npackage bad\n")
	write(t, filepath.Join(root, "exempt", "testdata", "t.go"), "package t\n")

	got, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != filepath.Join(root, "bad") {
		t.Fatalf("undocumented = %v, want only the bad package", got)
	}
}

func TestDocOnAnyFileSuffices(t *testing.T) {
	root := t.TempDir()
	// The doc comment lives on the second file, as with a dedicated doc.go.
	write(t, filepath.Join(root, "p", "impl.go"), "package p\n")
	write(t, filepath.Join(root, "p", "doc.go"), "// Package p is documented elsewhere.\npackage p\n")
	got, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("undocumented = %v, want none", got)
	}
}

// TestRepositoryIsFullyDocumented is the in-test mirror of the Makefile
// gate: every package in this repository must carry a doc comment.
func TestRepositoryIsFullyDocumented(t *testing.T) {
	got, err := run("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("undocumented packages: %v", got)
	}
}
