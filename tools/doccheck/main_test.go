package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsUndocumentedPackage(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "good", "doc.go"), "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(root, "good", "extra.go"), "package good\n")
	write(t, filepath.Join(root, "bad", "bad.go"), "package bad\n")
	write(t, filepath.Join(root, "bad", "bad_test.go"), "// Package bad — test files don't count.\npackage bad\n")
	write(t, filepath.Join(root, "exempt", "testdata", "t.go"), "package t\n")

	got, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != filepath.Join(root, "bad") {
		t.Fatalf("undocumented = %v, want only the bad package", got)
	}
}

func TestDocOnAnyFileSuffices(t *testing.T) {
	root := t.TempDir()
	// The doc comment lives on the second file, as with a dedicated doc.go.
	write(t, filepath.Join(root, "p", "impl.go"), "package p\n")
	write(t, filepath.Join(root, "p", "doc.go"), "// Package p is documented elsewhere.\npackage p\n")
	got, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("undocumented = %v, want none", got)
	}
}

// TestRepositoryIsFullyDocumented is the in-test mirror of the Makefile
// gate: every package in this repository must carry a doc comment.
func TestRepositoryIsFullyDocumented(t *testing.T) {
	got, err := run("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("undocumented packages: %v", got)
	}
}

// TestStaleFlagDetection pins the flag-reference check: a doc flag that no
// binary registers fails, registered flags and allowlisted external-tool
// flags pass, and mid-word dashes are never flag references.
func TestStaleFlagDetection(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "cmd", "tool", "main.go"), `// Command tool.
package main

import "flag"

func main() {
	_ = flag.String("alpha", "", "")
	var n int
	flag.IntVar(&n, "beta-count", 0, "")
	flag.Parse()
}
`)
	write(t, filepath.Join(root, "README.md"),
		"Use `-alpha` or -beta-count here.\n"+
			"go test -race -bench . is fine.\n"+
			"false-disable and 2e-08 are not flags.\n"+
			"But -gamma was renamed long ago.\n"+
			"And (-delta) hides in parens.\n")

	stale, err := checkDocFlags(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 2 {
		t.Fatalf("stale = %v, want exactly -gamma and -delta", stale)
	}
	for i, want := range []string{"-gamma", "-delta"} {
		if !strings.Contains(stale[i], want) || !strings.Contains(stale[i], "README.md:") {
			t.Errorf("stale[%d] = %q, want a README.md complaint about %s", i, stale[i], want)
		}
	}
}

// TestRepositoryFlagsAreReal is the in-test mirror of the Makefile gate:
// every flag the four doc files reference must be registered by a binary.
func TestRepositoryFlagsAreReal(t *testing.T) {
	stale, err := checkDocFlags("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Fatalf("stale doc flags: %v", stale)
	}
}
