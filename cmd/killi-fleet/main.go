// killi-fleet runs fleet-scale Monte Carlo campaigns: N simulated dies —
// each a distinct fault population drawn from a per-die seed stream —
// crossed with a voltage grid and a protection-scheme list, streamed
// through online aggregation into per-(scheme, voltage) yield with 95%
// confidence intervals, normalized-execution-time quantiles, and per-die
// Vmin CDFs. It answers the deployment question the paper's single-map
// experiments cannot: across a fleet of devices, what fraction is
// deployable at each operating point under each scheme?
//
//	go run ./cmd/killi-fleet -dies 1000 -schemes killi-1:64,msecc
//	go run ./cmd/killi-fleet -dies 256 -voltages 0.55:0.725:0.025 -format csv -o cdf.csv
//
// -voltages accepts either a comma-separated grid ("0.575,0.625,0.675") or
// a lo:hi:step range; -format selects table (human), csv, or jsonl (both
// machine-readable, floats at full precision). -classes adds a fault-class
// axis — semicolon-separated faultmodel.ClassSyntax specs (semicolons
// because mixed specs contain commas), one campaign pass per spec, reported
// in the "classes" output column. A fixed -seed reproduces the output
// bit-for-bit at any -parallel and -shards value. SIGINT or SIGTERM
// cancels in-flight simulations at their next kernel boundary and exits 130.
//
// -cache <dir> enables the content-addressed result cache at two grains: a
// warm re-run of an identical campaign streams whole-die records at
// near-disk speed, and a campaign sharing a (seed, die, workload, scheme,
// classes) prefix with an earlier one (say, new grid voltages) only
// simulates the new cells. -checkpoint <dir> appends each die's record to a
// restart journal as it merges; -resume replays the journal's valid prefix
// and dispatches only the remaining dies. Cached, resumed, and cold runs
// produce byte-identical output at any -parallel value; the run summary
// (wall-clock, cache/resume counts) goes to stderr, never into the output.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"killi/internal/campaign"
	"killi/internal/experiments"
	"killi/internal/faultmodel"
)

func main() {
	os.Exit(run())
}

func run() int {
	dies := flag.Int("dies", 100, "number of Monte Carlo device instances")
	workloads := flag.String("workloads", "xsbench", "comma-separated workloads to campaign over")
	schemes := flag.String("schemes", "killi-1:64,msecc", "comma-separated protection schemes: "+experiments.SchemeSyntax())
	voltages := flag.String("voltages", "", "voltage grid: comma-separated points or lo:hi:step (default the paper's 0.575..0.700 in 25 mV steps)")
	classes := flag.String("classes", "persistent", "semicolon-separated fault-class axis, each spec: "+faultmodel.ClassSyntax())
	seed := flag.Uint64("seed", 1, "campaign seed; output is bit-reproducible for a fixed seed at any -parallel/-shards")
	requests := flag.Int("requests", 2000, "trace requests per CU")
	warmup := flag.Int("warmup", 0, "warm-up kernels before each measured run")
	parallel := flag.Int("parallel", -1, "concurrently simulating dies (1 = serial, -1 = GOMAXPROCS/shards); output is identical at any value")
	shards := flag.Int("shards", 1, "intra-simulation shard count; output is bit-identical at any value")
	threshold := flag.Float64("threshold", campaign.DefaultPassThreshold, "pass criterion: max execution time normalized to the die's fault-free baseline")
	format := flag.String("format", campaign.FormatTable, "output format: table, csv, or jsonl")
	out := flag.String("o", "", "write output to this file (default stdout)")
	progress := flag.Bool("progress", false, "report campaign progress on stderr")
	cache := flag.String("cache", "", "content-addressed result cache directory: whole-die records for warm re-runs plus per-cell entries shared with killi-sim")
	checkpoint := flag.String("checkpoint", "", "append completed die records to a restart journal in this directory")
	resume := flag.Bool("resume", false, "replay the -checkpoint journal's valid prefix before dispatching the remaining dies")
	flag.Parse()

	if err := experiments.ValidateFlags(*requests, *parallel, *shards, runtime.GOMAXPROCS(0)); err != nil {
		fmt.Fprintf(os.Stderr, "killi-fleet: %v\n", err)
		return 2
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "killi-fleet: -resume needs -checkpoint (the journal to replay)")
		return 2
	}
	grid, err := parseVoltages(*voltages)
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-fleet: -voltages: %v\n", err)
		return 2
	}

	cfg := campaign.Config{
		Workloads:     experiments.SplitList(*workloads),
		Schemes:       experiments.SplitList(*schemes),
		FaultClasses:  splitClasses(*classes),
		Voltages:      grid,
		Dies:          *dies,
		Seed:          *seed,
		RequestsPerCU: *requests,
		WarmupKernels: *warmup,
		Parallelism:   *parallel,
		Shards:        *shards,
		PassThreshold: *threshold,
		CacheDir:      *cache,
		CheckpointDir: *checkpoint,
		Resume:        *resume,
	}
	if *progress {
		// Throttle to ~1% steps so a 100k-die campaign does not melt the
		// terminal; Run calls this in die order, so "done" never regresses.
		step := max(1, *dies/100)
		cfg.Progress = func(p campaign.ProgressInfo) {
			if p.Done%step == 0 || p.Done == p.Total {
				fmt.Fprintf(os.Stderr, "\rkilli-fleet: %d/%d dies (%.0f%%, %d cached, %d resumed)",
					p.Done, p.Total, 100*float64(p.Done)/float64(p.Total), p.Cached, p.Resumed)
				if p.Done == p.Total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	// Validate now so flag errors exit 2 before any simulation runs.
	if _, err := cfg.Normalized(); err != nil {
		fmt.Fprintf(os.Stderr, "killi-fleet: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := campaign.Run(ctx, cfg)
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "killi-fleet: interrupted")
		return 130
	case err != nil:
		fmt.Fprintf(os.Stderr, "killi-fleet: %v\n", err)
		return 1
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "killi-fleet: -o: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := res.Write(w, *format); err != nil {
		fmt.Fprintf(os.Stderr, "killi-fleet: %v\n", err)
		return 1
	}
	// The run summary goes to stderr: output formats are pure functions of
	// the aggregates so warm/resumed runs diff clean, and CI greps this
	// line to assert cache warmth.
	fmt.Fprintf(os.Stderr, "killi-fleet: %d dies in %.1fs (%.2f dies/s; cached=%d resumed=%d cellhits=%d)\n",
		res.Dies, res.ElapsedSeconds, res.DiesPerSecond, res.CachedDies, res.ResumedDies, res.CellCacheHits)
	return 0
}

// splitClasses splits the -classes axis on semicolons (mixed specs contain
// commas, so the usual comma list would split them apart). Validation is
// campaign.Config.Normalized's job.
func splitClasses(s string) []string {
	var specs []string
	for _, part := range strings.Split(s, ";") {
		if part = strings.TrimSpace(part); part != "" {
			specs = append(specs, part)
		}
	}
	return specs
}

// parseVoltages parses the -voltages grammar: empty (the default grid), a
// comma-separated list, or an inclusive lo:hi:step range. Range points are
// computed as lo + i*step (not accumulated), so "0.55:0.725:0.025" lands
// exactly on 8 points with no floating-point drift past hi.
func parseVoltages(s string) ([]float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil // campaign.Config applies the default grid
	}
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("range must be lo:hi:step, got %q", s)
		}
		var v [3]float64
		for i, p := range parts {
			f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad range component %q", p)
			}
			v[i] = f
		}
		lo, hi, step := v[0], v[1], v[2]
		if step <= 0 || hi < lo {
			return nil, fmt.Errorf("range %q needs hi >= lo and step > 0", s)
		}
		// Half-step tolerance keeps the inclusive endpoint despite binary
		// rounding of the decimal inputs.
		n := int(math.Floor((hi-lo)/step + 0.5))
		var grid []float64
		for i := 0; i <= n; i++ {
			grid = append(grid, lo+float64(i)*step)
		}
		return grid, nil
	}
	var grid []float64
	for _, p := range experiments.SplitList(s) {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad voltage %q", p)
		}
		grid = append(grid, f)
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("no voltages in %q", s)
	}
	return grid, nil
}
