package main

// End-to-end tests of the cached/restartable campaign lifecycle against the
// real binary and the real simulator: warm re-runs and kill-and-resume must
// reproduce an uninterrupted run's bytes exactly, an interrupted cached
// campaign must strand no cache temp files, and flag misuse must fail fast.

import (
	"bytes"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildFleet builds the killi-fleet binary into a temp dir.
func buildFleet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "killi-fleet")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// smallCampaign is a fast real-simulator campaign: every test in this file
// shares it so outputs are comparable across runs.
func smallCampaign(extra ...string) []string {
	args := []string{
		"-dies", "24", "-workloads", "xsbench", "-schemes", "killi-1:64",
		"-voltages", "0.600,0.625", "-requests", "200", "-format", "csv",
	}
	return append(args, extra...)
}

func runFleet(t *testing.T, bin string, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	if err := cmd.Run(); err != nil {
		t.Fatalf("killi-fleet %v: %v\nstderr:\n%s", args, err, errBuf.String())
	}
	return outBuf.String(), errBuf.String()
}

// TestWarmRunByteIdentical pins the cached-campaign contract end to end: the
// second identical invocation against one cache dir reports every die as
// cached and writes byte-identical CSV.
func TestWarmRunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real binary; skipped in -short")
	}
	bin := buildFleet(t)
	cacheDir := t.TempDir()

	cold, coldErr := runFleet(t, bin, smallCampaign("-cache", cacheDir, "-parallel", "2")...)
	if !strings.Contains(coldErr, "cached=0") {
		t.Errorf("cold run summary should report cached=0:\n%s", coldErr)
	}
	warm, warmErr := runFleet(t, bin, smallCampaign("-cache", cacheDir, "-parallel", "4")...)
	if warm != cold {
		t.Error("warm CSV differs from cold CSV")
	}
	if !strings.Contains(warmErr, "cached=24") {
		t.Errorf("warm run summary should report cached=24:\n%s", warmErr)
	}
}

// TestKillAndResumeMatchesUninterrupted pins the restart contract: a
// campaign SIGKILLed mid-run resumes from its checkpoint and produces the
// same bytes as a run that was never interrupted — even though SIGKILL can
// tear the checkpoint's final line. Robust to scheduling: whether the kill
// lands early (little to replay) or after completion (everything replays),
// byte-identity must hold.
func TestKillAndResumeMatchesUninterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary; skipped in -short")
	}
	bin := buildFleet(t)
	// Bigger than smallCampaign so the kill lands mid-run: ~300 dies take
	// several seconds at this trace length.
	campaign := func(extra ...string) []string {
		args := []string{
			"-dies", "300", "-workloads", "xsbench", "-schemes", "killi-1:64",
			"-voltages", "0.600,0.625", "-requests", "200", "-format", "csv",
		}
		return append(args, extra...)
	}
	ref, _ := runFleet(t, bin, campaign("-parallel", "2")...)

	ckptDir := t.TempDir()
	outFile := filepath.Join(t.TempDir(), "killed.csv")
	cmd := exec.Command(bin, campaign("-checkpoint", ckptDir, "-parallel", "2", "-o", outFile)...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let some dies merge, then kill without ceremony. A 1s fuse usually
	// lands mid-run, and the test is correct whether it lands early (little
	// to replay) or after completion (everything replays).
	time.Sleep(1 * time.Second)
	_ = cmd.Process.Kill()
	_ = cmd.Wait()

	entries, err := filepath.Glob(filepath.Join(ckptDir, "campaign-*.jsonl"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want one checkpoint file, got %v (err %v)", entries, err)
	}

	resumed, resumedErr := runFleet(t, bin, campaign("-checkpoint", ckptDir, "-resume", "-parallel", "4")...)
	if resumed != ref {
		t.Error("resumed CSV differs from uninterrupted run")
	}
	if !strings.Contains(resumedErr, "resumed=") {
		t.Errorf("resume summary missing resumed count:\n%s", resumedErr)
	}

	// A second resume replays the now-complete checkpoint outright.
	again, againErr := runFleet(t, bin, campaign("-checkpoint", ckptDir, "-resume", "-parallel", "1")...)
	if again != ref {
		t.Error("second resume differs from uninterrupted run")
	}
	if !strings.Contains(againErr, "resumed=300") {
		t.Errorf("complete-checkpoint resume should report resumed=300:\n%s", againErr)
	}
}

// TestInterruptedCachedCampaignStrandsNoTemps pins the SIGINT path: an
// aborted cached campaign exits 130 and sweeps every stranded simcache
// "put-*" temp file, like killi-sim's interrupted sweep.
func TestInterruptedCachedCampaignStrandsNoTemps(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and interrupts a real binary; skipped in -short")
	}
	bin := buildFleet(t)
	cacheDir := t.TempDir()

	// Big enough to still be mid-campaign when the signal lands a second in.
	cmd := exec.Command(bin,
		"-dies", "5000", "-workloads", "xsbench", "-schemes", "killi-1:64",
		"-voltages", "0.600,0.625", "-requests", "200",
		"-parallel", "2", "-cache", cacheDir)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1 * time.Second)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatalf("signalling: %v (did the campaign finish before the signal?)", err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		var exit *exec.ExitError
		if err == nil {
			t.Fatalf("interrupted campaign exited 0; stderr:\n%s", stderr.String())
		} else if !errors.As(err, &exit) {
			t.Fatalf("waiting: %v", err)
		} else if code := exit.ExitCode(); code != 130 {
			t.Errorf("exit code %d, want 130; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(60 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("campaign did not exit within 60s of SIGINT; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr does not report the interruption:\n%s", stderr.String())
	}

	temps, err := filepath.Glob(filepath.Join(cacheDir, "put-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(temps) != 0 {
		t.Errorf("interrupted campaign stranded %d cache temp files: %v", len(temps), temps)
	}
}

// TestResumeNeedsCheckpoint pins fail-fast flag validation for the new
// flags: -resume without -checkpoint exits 2 with a one-line error.
func TestResumeNeedsCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real binary; skipped in -short")
	}
	bin := buildFleet(t)
	cmd := exec.Command(bin, "-resume")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("-resume alone: err %v, want exit code 2; stderr:\n%s", err, stderr.String())
	}
	if msg := stderr.String(); strings.Count(msg, "\n") != 1 {
		t.Errorf("want a one-line error, got:\n%s", msg)
	}
}
