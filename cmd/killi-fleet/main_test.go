package main

import (
	"math"
	"testing"
)

func TestParseVoltages(t *testing.T) {
	cases := []struct {
		in   string
		want []float64
	}{
		{"", nil},
		{"0.625", []float64{0.625}},
		{"0.575, 0.625 ,0.675", []float64{0.575, 0.625, 0.675}},
		{"0.55:0.725:0.025", []float64{0.55, 0.575, 0.6, 0.625, 0.65, 0.675, 0.7, 0.725}},
		{"0.6:0.6:0.1", []float64{0.6}},
		{"0.575:0.7:0.025", []float64{0.575, 0.6, 0.625, 0.65, 0.675, 0.7}},
	}
	for _, c := range cases {
		got, err := parseVoltages(c.in)
		if err != nil {
			t.Errorf("parseVoltages(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseVoltages(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if math.Abs(got[i]-c.want[i]) > 1e-9 {
				t.Errorf("parseVoltages(%q)[%d] = %v, want %v", c.in, i, got[i], c.want[i])
			}
		}
	}
	for _, bad := range []string{"lo:hi:step", "0.6:0.5:0.1", "0.5:0.7:0", "0.5:0.7", "abc", ","} {
		if _, err := parseVoltages(bad); err == nil {
			t.Errorf("parseVoltages(%q) should fail", bad)
		}
	}
}
