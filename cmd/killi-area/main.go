// killi-area regenerates the paper's storage-area and power tables:
//
//	-table 4: Killi storage with DECTED / TECQED / 6EC7ED codes,
//	          normalized to SECDED-per-line
//	-table 5: area comparison across protection schemes
//	-table 6: power at 0.625×VDD normalized to the nominal fault-free cache
//	-table 7: Killi-with-OLSC vs MS-ECC at 0.600 and 0.575×VDD
package main

import (
	"flag"
	"fmt"
	"os"

	"killi/internal/analytic"
	"killi/internal/faultmodel"
)

func main() {
	table := flag.Int("table", 5, "table to regenerate (4, 5, 6, or 7)")
	voltage := flag.Float64("voltage", 0.625, "operating voltage for table 6")
	flag.Parse()

	g := analytic.PaperL2()
	switch *table {
	case 4:
		table4(g)
	case 5:
		table5(g)
	case 6:
		table6(*voltage)
	case 7:
		table7(g)
	default:
		fmt.Fprintf(os.Stderr, "killi-area: unknown table %d\n", *table)
		os.Exit(2)
	}
}

func table4(g analytic.L2Geometry) {
	fmt.Println("# Table 4: Killi storage area by ECC code, normalized to SECDED-per-line")
	ratios := []int{256, 128, 64, 32, 16}
	fmt.Printf("%-8s", "Code")
	for _, r := range ratios {
		fmt.Printf(" 1:%-6d", r)
	}
	fmt.Println()
	for _, row := range analytic.Table4(g) {
		fmt.Printf("%-8s", row.Code)
		for _, r := range ratios {
			fmt.Printf(" %-8.2f", row.Ratios[r])
		}
		fmt.Println()
	}
}

func table5(g analytic.L2Geometry) {
	fmt.Println("# Table 5: area comparison (ratio normalized to SECDED; % over 2MB L2)")
	fmt.Printf("%-14s %-12s %-8s %-10s\n", "Scheme", "Bits", "Ratio", "%overL2")
	for _, e := range analytic.Table5(g) {
		fmt.Printf("%-14s %-12d %-8.2f %-10.2f\n", e.Scheme, e.Bits, e.Ratio, e.PctOverL2)
	}
	fmt.Printf("\nKilli overhead: %.2f KB (1:256) .. %.2f KB (1:16); paper: 24.6 .. 34.25 KB\n",
		analytic.KilliBytesForRatio(g, 256), analytic.KilliBytesForRatio(g, 16))
}

func table6(v float64) {
	fmt.Printf("# Table 6: power (%% of nominal fault-free) at %.3f x VDD\n", v)
	fmt.Printf("%-14s %-8s %-10s\n", "Scheme", "Power%", "Saving%")
	for _, e := range analytic.Table6(v) {
		fmt.Printf("%-14s %-8.1f %-10.1f\n", e.Scheme, e.Power, analytic.PowerSavingVsNominal(e.Power))
	}
}

func table7(g analytic.L2Geometry) {
	m := faultmodel.Default()
	fmt.Println("# Table 7: Killi (w/OLSC) storage vs MS-ECC for target capacity")
	fmt.Printf("%-8s %-14s %-10s %-14s\n", "V/VDD", "Capacity%", "ECCratio", "Killi/MS-ECC")
	for _, row := range analytic.Table7(g, func(v float64) float64 {
		return m.CellFailureProb(v, 1.0)
	}) {
		fmt.Printf("%-8.3f %-14.2f 1:%-8d %-14.2f\n",
			row.Voltage, row.CapacityTarget, row.ECCRatio, row.KilliOverMSECC)
	}
}
