// killi-bench measures the simulator core and records the numbers in a
// tracked JSON baseline (BENCH_core.json), so performance regressions show
// up in review like any other diff.
//
// Captured metrics:
//
//   - engine ns/event and allocs/event: a steady-state event-queue
//     microbenchmark over the sharded engine's K=1 serial fast path
//     (reused engine and sink, 100 events per iteration) via
//     testing.Benchmark;
//   - single_run_seconds: wall-clock (best of 3) for one simulation —
//     xsbench × killi-1:64 at 0.625xVDD, 2500 requests per CU — at the
//     -shards setting; this is the metric intra-run sharding moves;
//   - sweep_seconds: wall-clock for the serial (-parallel 1) four-workload
//     Figure 4/5 sweep at 0.625xVDD with 2500 requests per CU, no cache;
//   - sweep_cold_seconds: the same sweep writing a fresh result cache
//     (simulate everything, persist every task result);
//   - sweep_warm_seconds: the same sweep again over that cache (every
//     task served from disk);
//   - shard_curve_single_run_seconds: the single-run wall-clock at
//     K = 1, 2, 4, 8 shards (always measured serially per point), the
//     scaling table EXPERIMENTS.md cites;
//   - single_run_cycles, single_run_serial_timestamps and
//     single_run_rounds_k4: the tracked run's deterministic scheduling
//     ledger — simulated cycles, the serial engine's distinct event
//     timestamps (the barrier rounds a per-timestamp scheduler needs), and
//     the K=4 coalesced round count. Pure functions of the simulation, so
//     they gate lookahead coalescing exactly even on a 1-core host;
//   - server_cold_rps and server_hot_rps: requests per second through the
//     killi-simd job API (internal/simserver over HTTP) — cold drives
//     distinct jobs that all simulate, hot replays them against the warm
//     result cache. Cold stays ungated (machine- and load-shape-dependent);
//     hot gates as a loose 2x floor, because warm-request latency on a
//     shared 1-core host swings ±35% run to run but a halving means the
//     warm path stopped being warm (e.g. a cache-bypass bug drops it to
//     cold throughput, three orders of magnitude below the floor);
//   - campaign_dies_per_second: die throughput of a small serial
//     internal/campaign Monte Carlo fleet (12 dies × two schemes × a
//     two-point grid, 1200 requests per CU), the shared-state resolve +
//     streaming-aggregation path killi-fleet runs. Gated as a 1.5x
//     throughput floor — compute-bound like the sweeps, but measured once
//     over ~a second on a possibly shared core, so it gets more headroom
//     than their 15%; the failures it exists to catch (rebuilding fault
//     maps per voltage, losing trace sharing) are 2x or worse;
//   - campaign_warm_dies_per_second: the same campaign re-run against a
//     warm die cache (whole-die records streamed from disk — no fault
//     maps, no simulation). Gated relative to the same run's cold rate
//     (>= 10x) instead of the baseline, so host speed cancels out; a warm
//     run below 10x cold means the die cache stopped being hit.
//
// When the output file already exists, its "baseline" entry is preserved
// and only "current" is rewritten; delete the file to rebase the baseline.
//
// With -enforce, the run exits nonzero when the fresh measurement regresses
// against the file's baseline entry (15% on ns_per_event,
// single_run_seconds, and sweep_seconds; 1.5x on the fsync-bound
// sweep_cold_seconds; 2x on the ms-scale, I/O-bound sweep_warm_seconds;
// throughput floors of 1.5x on
// campaign_dies_per_second and 2x on server_hot_rps; a 10x relative floor
// on campaign_warm_dies_per_second against the same run's cold rate), when
// allocs_per_event is nonzero, or when any gated baseline field is zero —
// a zero baseline means the gate would silently pass, so it is an error,
// not a skip.
// The deterministic scheduling gates are exact: cycles and serial
// timestamps must match the baseline bit-for-bit (a change means the
// simulation's semantics moved — rebase deliberately, with the goldens),
// single_run_rounds_k4 may only decrease, and rounds_k4 × 5 <= cycles
// pins the coalescing win over the per-cycle round structure. The shard
// curve gates by host width: on >= 4 CPUs, K=4 must be >= 2x faster than
// K=1; on narrower hosts (where the curve is honestly overhead-only) each
// point must stay within 1.5x of the recorded baseline curve.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"killi/internal/campaign"
	"killi/internal/engine"
	"killi/internal/experiments"
	"killi/internal/gpu"
	"killi/internal/killi"
	"killi/internal/protection"
	"killi/internal/simserver"
)

type point struct {
	NsPerEvent       float64 `json:"ns_per_event"`
	AllocsPerEvent   float64 `json:"allocs_per_event"`
	SingleRunSeconds float64 `json:"single_run_seconds"`
	SweepSeconds     float64 `json:"sweep_seconds"`
	SweepColdSeconds float64 `json:"sweep_cold_seconds"`
	SweepWarmSeconds float64 `json:"sweep_warm_seconds"`
	ServerColdRPS    float64 `json:"server_cold_rps"`
	ServerHotRPS     float64 `json:"server_hot_rps"`
	// CampaignDiesPerSecond is the die throughput of the fixed serial
	// benchmark campaign (higher is better; gated as a floor).
	CampaignDiesPerSecond float64 `json:"campaign_dies_per_second"`
	// CampaignWarmDiesPerSecond is the same campaign re-run against a warm
	// die cache: every die streamed from disk, no fault maps, no
	// simulation. Gated relative to the same run's cold rate (>= 10x), so
	// host speed cancels out of the gate.
	CampaignWarmDiesPerSecond float64 `json:"campaign_warm_dies_per_second"`
	// Deterministic scheduling ledger of the tracked single run: exact
	// integers stored as float64 so the struct stays comparable and the
	// JSON stays uniform. Identical on every host at a given commit.
	SingleRunCycles           float64 `json:"single_run_cycles"`
	SingleRunSerialTimestamps float64 `json:"single_run_serial_timestamps"`
	SingleRunRoundsK4         float64 `json:"single_run_rounds_k4"`
}

type report struct {
	Baseline   point              `json:"baseline"`
	Current    point              `json:"current"`
	ShardCurve map[string]float64 `json:"shard_curve_single_run_seconds,omitempty"`
	// ShardCurveBaseline is the committed reference curve the narrow-host
	// regression gate compares against (preserved like Baseline).
	ShardCurveBaseline map[string]float64 `json:"shard_curve_baseline_seconds,omitempty"`
}

const eventsPerIter = 100

// sinkFunc adapts a function to engine.EventSink.
type sinkFunc func(kind uint8, a, b uint64)

func (f sinkFunc) OnEvent(kind uint8, a, b uint64) { f(kind, a, b) }

// benchEngine measures the sharded engine's K=1 serial fast path — the
// path every default simulation runs on — with a self-rescheduling sink
// that keeps the queue warm, mirroring the engine package's steady-state
// benchmark.
func benchEngine() (nsPerEvent, allocsPerEvent float64) {
	res := testing.Benchmark(func(b *testing.B) {
		s := engine.NewSharded(1)
		d := s.Domain(0)
		d.Bind(sinkFunc(func(kind uint8, a, bb uint64) {
			if a%2 == 0 {
				d.After(d.Now()%13, kind, a+1, bb)
			}
		}))
		for i := 0; i < 128; i++ {
			d.After(uint64(i%13), 0, uint64(i), 0)
		}
		s.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < eventsPerIter; j++ {
				d.After(uint64(j%13), 0, uint64(j), 0)
			}
			s.Run()
		}
	})
	return float64(res.NsPerOp()) / eventsPerIter,
		float64(res.AllocsPerOp()) / eventsPerIter
}

// sweepConfig is the fixed benchmark sweep; cacheDir == "" disables the
// result cache.
func sweepConfig(cacheDir string, shards int) experiments.Config {
	return experiments.Config{
		Voltage:       0.625,
		RequestsPerCU: 2500,
		Seed:          1,
		Workloads:     []string{"nekbone", "quicksilver", "xsbench", "fft"},
		Parallelism:   1,
		Shards:        shards,
		CacheDir:      cacheDir,
	}
}

func benchSweep(cacheDir string, shards int) (float64, error) {
	start := time.Now()
	if _, err := experiments.Run(context.Background(), sweepConfig(cacheDir, shards)); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// benchSingle measures one simulation's wall-clock (best of three) at the
// given shard count — the sweep's memory-bound cell, xsbench × killi-1:64
// — and returns the run's result, whose Sched ledger carries the
// deterministic round/timestamp counters for that shard count.
func benchSingle(shards int) (float64, gpu.Result, error) {
	cfg := experiments.Config{
		Voltage:       0.625,
		RequestsPerCU: 2500,
		Seed:          1,
		Shards:        shards,
	}
	newScheme := func() protection.Scheme { return killi.New(killi.Config{Ratio: 64}) }
	best := 0.0
	var res gpu.Result
	for i := 0; i < 3; i++ {
		start := time.Now()
		r, err := experiments.RunOne(context.Background(), cfg, "xsbench", newScheme, cfg.Voltage)
		if err != nil {
			return 0, gpu.Result{}, err
		}
		res = r
		if s := time.Since(start).Seconds(); i == 0 || s < best {
			best = s
		}
	}
	return best, res, nil
}

// benchServer measures request throughput through the killi-simd job API:
// a simserver behind a real HTTP listener, driven cold (serverJobs distinct
// run jobs, all submitted at once so the worker pool is saturated, every
// one simulating) and then hot (serverHotN sequential replays of the same
// jobs, every one a cache hit — 1/latency of a warm request).
func benchServer() (coldRPS, hotRPS float64, err error) {
	cacheDir, err := os.MkdirTemp("", "killi-bench-server-")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(cacheDir)
	svc, err := simserver.New(simserver.Config{CacheDir: cacheDir, QueueDepth: serverJobs})
	if err != nil {
		return 0, 0, err
	}
	defer svc.Close(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	post := func(seed int) error {
		body := fmt.Sprintf(
			`{"kind":"run","workload":"xsbench","scheme":"killi-1:64","requests_per_cu":2500,"seed":%d}`, seed)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("job seed %d: status %d", seed, resp.StatusCode)
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make([]error, serverJobs)
	start := time.Now()
	for i := 0; i < serverJobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = post(1 + i)
		}(i)
	}
	wg.Wait()
	coldRPS = serverJobs / time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}

	start = time.Now()
	for i := 0; i < serverHotN; i++ {
		if err := post(1 + i%serverJobs); err != nil {
			return 0, 0, err
		}
	}
	hotRPS = serverHotN / time.Since(start).Seconds()
	return coldRPS, hotRPS, nil
}

const (
	serverJobs = 16  // distinct cold jobs (and the hot phase's key set)
	serverHotN = 200 // sequential warm requests
)

// benchCampaign measures fleet-campaign die throughput: a fixed serial
// internal/campaign run — per-die fault-map build and per-voltage resolve,
// baseline + scheme×voltage cell simulations, streaming aggregation — sized
// to land around a second on a 1-core host. Best of two, because the noise
// on a shared core is purely additive slowdown. cacheDir == "" disables the
// die cache (the cold configuration campaign_dies_per_second tracks).
func benchCampaign(shards int, cacheDir string) (diesPerSecond float64, err error) {
	best := 0.0
	for i := 0; i < 2; i++ {
		res, err := campaign.Run(context.Background(), campaign.Config{
			Workloads:     []string{"xsbench"},
			Schemes:       []string{"killi-1:64", "msecc"},
			Voltages:      []float64{0.600, 0.625},
			Dies:          campaignDies,
			Seed:          1,
			RequestsPerCU: 1200,
			Parallelism:   1,
			Shards:        shards,
			CacheDir:      cacheDir,
		})
		if err != nil {
			return 0, err
		}
		if res.DiesPerSecond > best {
			best = res.DiesPerSecond
		}
	}
	return best, nil
}

// benchCampaignWarm measures the whole-die cache fast path: one pass over a
// fresh cache dir populates it with die records (and warms the page cache),
// then the best of two fully warm passes is the tracked rate — every die
// streamed from disk, no fault maps, no simulation.
func benchCampaignWarm(shards int) (float64, error) {
	dir, err := os.MkdirTemp("", "killi-bench-campaign-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	if _, err := benchCampaign(shards, dir); err != nil {
		return 0, err
	}
	return benchCampaign(shards, dir)
}

const campaignDies = 12

// enforce compares a fresh measurement against the committed baseline and
// returns the violations (empty = within budget). Latency metrics gate
// at 15%; the ms-scale, I/O-bound warm-cache sweep gates loosely at 2x;
// throughput metrics (campaign dies/s, warm-request RPS) gate as floors;
// allocs_per_event gates absolutely at zero (any nonzero measurement means
// a hot path grew an allocation, e.g. an instrumentation hook escaping its
// nil-observer guard). A zero-valued baseline on any gated field is itself
// a violation: it means the committed file never captured that metric and
// the ratio gate would silently pass forever.
func enforce(baseline, cur point) []string {
	var bad []string
	for _, g := range []struct {
		name      string
		base, cur float64
		maxRatio  float64
	}{
		{"ns_per_event", baseline.NsPerEvent, cur.NsPerEvent, 1.15},
		{"single_run_seconds", baseline.SingleRunSeconds, cur.SingleRunSeconds, 1.15},
		{"sweep_seconds", baseline.SweepSeconds, cur.SweepSeconds, 1.15},
		// The cold sweep adds a per-entry write+fsync to the compute the
		// 15%-gated sweep_seconds already covers, and fsync latency on a
		// shared host swings ~30% run to run (measured 1.09s..1.39s against
		// a 1.06s baseline). A real cache-write regression — serialized
		// fsyncs, double writes — is 2x or worse, so 1.5x separates the two.
		{"sweep_cold_seconds", baseline.SweepColdSeconds, cur.SweepColdSeconds, 1.5},
		{"sweep_warm_seconds", baseline.SweepWarmSeconds, cur.SweepWarmSeconds, 2.0},
	} {
		if g.base == 0 {
			bad = append(bad, fmt.Sprintf("%s baseline is 0 — the gate cannot fire; rebase the baseline (delete the file and rerun)", g.name))
			continue
		}
		if g.cur > g.base*g.maxRatio {
			bad = append(bad, fmt.Sprintf("%s %.4f exceeds baseline %.4f by more than %d%%",
				g.name, g.cur, g.base, int((g.maxRatio-1)*100+0.5)))
		}
	}
	// Throughput floors: higher is better, so these gate downward. The
	// ratios differ because the noise does — campaign throughput is
	// compute-bound (1.5x floor), warm-request RPS on a shared host swings
	// ±35% run to run, so only a halving (the shape of a cache-bypass bug)
	// fails it.
	for _, g := range []struct {
		name      string
		base, cur float64
		minRatio  float64
	}{
		{"campaign_dies_per_second", baseline.CampaignDiesPerSecond, cur.CampaignDiesPerSecond, 1.5},
		{"server_hot_rps", baseline.ServerHotRPS, cur.ServerHotRPS, 2.0},
	} {
		if g.base == 0 {
			bad = append(bad, fmt.Sprintf("%s baseline is 0 — the gate cannot fire; rebase the baseline (delete the file and rerun)", g.name))
			continue
		}
		if g.cur < g.base/g.minRatio {
			bad = append(bad, fmt.Sprintf("%s %.2f fell below baseline %.2f by more than %.1fx",
				g.name, g.cur, g.base, g.minRatio))
		}
	}
	// The warm campaign gates against the same run's cold rate, not the
	// baseline, so host speed cancels out: a warm re-run below 10x cold
	// means the die cache stopped answering (a key or schema drift quietly
	// recomputing every cell), which is a different regime, not noise.
	if cur.CampaignWarmDiesPerSecond < 10*cur.CampaignDiesPerSecond {
		bad = append(bad, fmt.Sprintf("campaign_warm_dies_per_second %.2f is not >= 10x the cold rate %.2f — the die cache is not being hit",
			cur.CampaignWarmDiesPerSecond, cur.CampaignDiesPerSecond))
	}
	if cur.AllocsPerEvent > 0 {
		bad = append(bad, fmt.Sprintf("allocs_per_event %.2f, want 0 (steady state must stay allocation-free)",
			cur.AllocsPerEvent))
	}
	// Deterministic scheduling gates: these counters are pure functions of
	// the simulation, so they compare exactly, not by ratio.
	for _, g := range []struct {
		name      string
		base, cur float64
	}{
		{"single_run_cycles", baseline.SingleRunCycles, cur.SingleRunCycles},
		{"single_run_serial_timestamps", baseline.SingleRunSerialTimestamps, cur.SingleRunSerialTimestamps},
	} {
		if g.base == 0 {
			bad = append(bad, fmt.Sprintf("%s baseline is 0 — rebase the baseline (delete the file and rerun)", g.name))
		} else if g.cur != g.base {
			bad = append(bad, fmt.Sprintf("%s %.0f differs from baseline %.0f — simulation semantics moved; rebase deliberately, with the goldens",
				g.name, g.cur, g.base))
		}
	}
	switch {
	case baseline.SingleRunRoundsK4 == 0:
		bad = append(bad, "single_run_rounds_k4 baseline is 0 — rebase the baseline (delete the file and rerun)")
	case cur.SingleRunRoundsK4 > baseline.SingleRunRoundsK4:
		bad = append(bad, fmt.Sprintf("single_run_rounds_k4 %.0f exceeds baseline %.0f — lookahead coalescing regressed",
			cur.SingleRunRoundsK4, baseline.SingleRunRoundsK4))
	}
	if cur.SingleRunRoundsK4*5 > cur.SingleRunCycles {
		bad = append(bad, fmt.Sprintf("single_run_rounds_k4 %.0f × 5 exceeds single_run_cycles %.0f — barrier rounds must stay >= 5x below the per-cycle round structure",
			cur.SingleRunRoundsK4, cur.SingleRunCycles))
	}
	return bad
}

// enforceCurve gates the shard-scaling curve by host width: a host with at
// least four CPUs must show the real parallel win (K=4 at least 2x faster
// than K=1); a narrower host cannot, so it gates each recorded point
// against the committed baseline curve instead (1.5x — wall-clock on
// loaded CI runners is noisy, but a doubling still fails).
func enforceCurve(baseline, cur map[string]float64, ncpu int) []string {
	var bad []string
	if ncpu >= 4 {
		k1, k4 := cur["1"], cur["4"]
		if k1 == 0 || k4 == 0 {
			bad = append(bad, "shard curve is missing the K=1 or K=4 point")
		} else if k4 > k1/2 {
			bad = append(bad, fmt.Sprintf("K=4 single run %.3fs is not >= 2x faster than K=1 %.3fs on a %d-CPU host",
				k4, k1, ncpu))
		}
		return bad
	}
	for _, k := range []string{"1", "2", "4", "8"} {
		base := baseline[k]
		if base == 0 {
			bad = append(bad, fmt.Sprintf("shard curve baseline has no K=%s point — rebase the baseline", k))
			continue
		}
		if c := cur[k]; c > base*1.5 {
			bad = append(bad, fmt.Sprintf("shard curve K=%s %.3fs exceeds baseline %.3fs by more than 50%%", k, c, base))
		}
	}
	return bad
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output file for the benchmark report")
	gate := flag.Bool("enforce", false, "exit nonzero on regression against the file's baseline entry (15% latency, 2x warm cache, 1.5x/2x throughput floors), nonzero allocs_per_event, or a zero-valued gated baseline field")
	shards := flag.Int("shards", 1, "intra-run shard count for the sweep and single-run measurements (the shard curve always covers K=1..8)")
	flag.Parse()

	ns, allocs := benchEngine()
	fmt.Fprintf(os.Stderr, "engine: %.1f ns/event, %.2f allocs/event (K=1 serial path)\n", ns, allocs)

	single, _, err := benchSingle(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: single run: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "single: %.3f s (xsbench x killi-1:64, 2500 req/CU, %d shards, best of 3)\n",
		single, *shards)

	curve := map[string]float64{}
	var cycles, serialStamps, roundsK4 uint64
	for _, k := range []int{1, 2, 4, 8} {
		s, res, err := benchSingle(k)
		if err != nil {
			fmt.Fprintf(os.Stderr, "killi-bench: shard curve K=%d: %v\n", k, err)
			os.Exit(1)
		}
		curve[fmt.Sprintf("%d", k)] = s
		switch k {
		case 1:
			cycles = res.Cycles
			serialStamps = res.Sched.Timestamps
		case 4:
			roundsK4 = res.Sched.Rounds
		}
		fmt.Fprintf(os.Stderr, "curve:  K=%d %.3f s (rounds %d, cross-shard msgs %d, ingests skipped %d)\n",
			k, s, res.Sched.Rounds, res.Sched.CrossShardMessages, res.Sched.IngestsSkipped)
	}
	fmt.Fprintf(os.Stderr, "sched:  %d cycles, %d serial timestamps -> %d K=4 rounds (%.2fx vs per-cycle, %.2fx vs per-timestamp)\n",
		cycles, serialStamps, roundsK4,
		float64(cycles)/float64(roundsK4), float64(serialStamps)/float64(roundsK4))

	sweep, err := benchSweep("", *shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sweep:  %.3f s (4 workloads, 2500 req/CU, serial, no cache, %d shards)\n",
		sweep, *shards)

	cacheDir, err := os.MkdirTemp("", "killi-bench-cache-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(cacheDir)
	cold, err := benchSweep(cacheDir, *shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: cold sweep: %v\n", err)
		os.Exit(1)
	}
	warm, err := benchSweep(cacheDir, *shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: warm sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cache:  cold %.3f s -> warm %.3f s (%.1f%% of cold)\n",
		cold, warm, 100*warm/cold)

	coldRPS, hotRPS, err := benchServer()
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: server: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "server: cold %.1f req/s -> hot %.1f req/s (%d jobs via the killi-simd API)\n",
		coldRPS, hotRPS, serverJobs)

	diesPerSec, err := benchCampaign(*shards, "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: campaign: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fleet:  %.2f dies/s (%d dies, 2 schemes x 2 voltages, 1200 req/CU, serial)\n",
		diesPerSec, campaignDies)

	warmDies, err := benchCampaignWarm(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: warm campaign: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fleet:  warm %.2f dies/s (%.0fx cold, whole-die cache)\n",
		warmDies, warmDies/diesPerSec)

	cur := point{
		NsPerEvent:                ns,
		AllocsPerEvent:            allocs,
		SingleRunSeconds:          single,
		SweepSeconds:              sweep,
		SweepColdSeconds:          cold,
		SweepWarmSeconds:          warm,
		ServerColdRPS:             coldRPS,
		ServerHotRPS:              hotRPS,
		CampaignDiesPerSecond:     diesPerSec,
		CampaignWarmDiesPerSecond: warmDies,
		SingleRunCycles:           float64(cycles),
		SingleRunSerialTimestamps: float64(serialStamps),
		SingleRunRoundsK4:         float64(roundsK4),
	}
	rep := report{Baseline: cur, Current: cur, ShardCurve: curve, ShardCurveBaseline: curve}
	if prev, err := os.ReadFile(*out); err == nil {
		var old report
		if json.Unmarshal(prev, &old) == nil && old.Baseline != (point{}) {
			rep.Baseline = old.Baseline
			// Fields the committed baseline predates start at the current
			// measurement instead of a meaningless zero.
			if rep.Baseline.ServerColdRPS == 0 {
				rep.Baseline.ServerColdRPS = cur.ServerColdRPS
			}
			if rep.Baseline.ServerHotRPS == 0 {
				rep.Baseline.ServerHotRPS = cur.ServerHotRPS
			}
			if rep.Baseline.CampaignDiesPerSecond == 0 {
				rep.Baseline.CampaignDiesPerSecond = cur.CampaignDiesPerSecond
			}
			if rep.Baseline.CampaignWarmDiesPerSecond == 0 {
				rep.Baseline.CampaignWarmDiesPerSecond = cur.CampaignWarmDiesPerSecond
			}
			if rep.Baseline.SingleRunCycles == 0 {
				rep.Baseline.SingleRunCycles = cur.SingleRunCycles
				rep.Baseline.SingleRunSerialTimestamps = cur.SingleRunSerialTimestamps
				rep.Baseline.SingleRunRoundsK4 = cur.SingleRunRoundsK4
			}
			if len(old.ShardCurveBaseline) > 0 {
				rep.ShardCurveBaseline = old.ShardCurveBaseline
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (baseline sweep %.3fs -> current %.3fs, %.2fx; single %.3fs; warm cache %.3fs)\n",
		*out, rep.Baseline.SweepSeconds, rep.Current.SweepSeconds,
		rep.Baseline.SweepSeconds/rep.Current.SweepSeconds, single, warm)

	if *gate {
		bad := enforce(rep.Baseline, cur)
		bad = append(bad, enforceCurve(rep.ShardCurveBaseline, curve, runtime.NumCPU())...)
		if len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintf(os.Stderr, "killi-bench: REGRESSION: %s\n", b)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "killi-bench: within baseline budget")
	}
}
