// killi-bench measures the simulator core and records the numbers in a
// tracked JSON baseline (BENCH_core.json), so performance regressions show
// up in review like any other diff.
//
// Two metrics are captured:
//
//   - engine ns/event and allocs/event: a steady-state event-queue
//     microbenchmark (reused engine and handler, 100 events per
//     iteration) via testing.Benchmark;
//   - sweep_seconds: wall-clock for the serial (-parallel 1) four-workload
//     Figure 4/5 sweep at 0.625xVDD with 2500 requests per CU.
//
// When the output file already exists, its "baseline" entry is preserved
// and only "current" is rewritten; delete the file to rebase the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"killi/internal/engine"
	"killi/internal/experiments"
)

type point struct {
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	SweepSeconds   float64 `json:"sweep_seconds"`
}

type report struct {
	Baseline point `json:"baseline"`
	Current  point `json:"current"`
}

// benchHandler reschedules itself for half the fired events so the queue
// stays warm, mirroring the engine package's steady-state benchmark.
type benchHandler struct {
	e     *engine.Engine
	count int
}

func (h *benchHandler) Fire() {
	h.count++
	if h.count%2 == 0 {
		h.e.ScheduleHandler(h.e.Now()%13, h)
	}
}

const eventsPerIter = 100

func benchEngine() (nsPerEvent, allocsPerEvent float64) {
	res := testing.Benchmark(func(b *testing.B) {
		var e engine.Engine
		h := &benchHandler{e: &e}
		for i := 0; i < 128; i++ {
			e.ScheduleHandler(uint64(i%13), h)
		}
		e.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < eventsPerIter; j++ {
				e.ScheduleHandler(uint64(j%13), h)
			}
			e.Run()
		}
	})
	return float64(res.NsPerOp()) / eventsPerIter,
		float64(res.AllocsPerOp()) / eventsPerIter
}

func benchSweep() (float64, error) {
	cfg := experiments.Config{
		Voltage:       0.625,
		RequestsPerCU: 2500,
		Seed:          1,
		Workloads:     []string{"nekbone", "quicksilver", "xsbench", "fft"},
		Parallelism:   1,
	}
	start := time.Now()
	if _, err := experiments.Run(cfg); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output file for the benchmark report")
	flag.Parse()

	ns, allocs := benchEngine()
	fmt.Fprintf(os.Stderr, "engine: %.1f ns/event, %.2f allocs/event\n", ns, allocs)
	sweep, err := benchSweep()
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sweep:  %.3f s (4 workloads, 2500 req/CU, serial)\n", sweep)

	cur := point{
		NsPerEvent:     ns,
		AllocsPerEvent: allocs,
		SweepSeconds:   sweep,
	}
	rep := report{Baseline: cur, Current: cur}
	if prev, err := os.ReadFile(*out); err == nil {
		var old report
		if json.Unmarshal(prev, &old) == nil && old.Baseline != (point{}) {
			rep.Baseline = old.Baseline
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (baseline sweep %.3fs -> current %.3fs, %.2fx)\n",
		*out, rep.Baseline.SweepSeconds, rep.Current.SweepSeconds,
		rep.Baseline.SweepSeconds/rep.Current.SweepSeconds)
}
