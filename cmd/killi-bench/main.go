// killi-bench measures the simulator core and records the numbers in a
// tracked JSON baseline (BENCH_core.json), so performance regressions show
// up in review like any other diff.
//
// Four metrics are captured:
//
//   - engine ns/event and allocs/event: a steady-state event-queue
//     microbenchmark (reused engine and handler, 100 events per
//     iteration) via testing.Benchmark;
//   - sweep_seconds: wall-clock for the serial (-parallel 1) four-workload
//     Figure 4/5 sweep at 0.625xVDD with 2500 requests per CU, no cache;
//   - sweep_cold_seconds: the same sweep writing a fresh result cache
//     (simulate everything, persist every task result);
//   - sweep_warm_seconds: the same sweep again over that cache (every
//     task served from disk).
//
// When the output file already exists, its "baseline" entry is preserved
// and only "current" is rewritten; delete the file to rebase the baseline.
//
// With -enforce, the run exits nonzero when the fresh measurement regresses
// more than 15% against the existing file's baseline entry on ns_per_event
// or sweep_seconds, or when allocs_per_event is nonzero — this is how CI
// turns the committed baseline into a gate instead of an artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"killi/internal/engine"
	"killi/internal/experiments"
)

type point struct {
	NsPerEvent       float64 `json:"ns_per_event"`
	AllocsPerEvent   float64 `json:"allocs_per_event"`
	SweepSeconds     float64 `json:"sweep_seconds"`
	SweepColdSeconds float64 `json:"sweep_cold_seconds"`
	SweepWarmSeconds float64 `json:"sweep_warm_seconds"`
}

type report struct {
	Baseline point `json:"baseline"`
	Current  point `json:"current"`
}

// benchHandler reschedules itself for half the fired events so the queue
// stays warm, mirroring the engine package's steady-state benchmark.
type benchHandler struct {
	e     *engine.Engine
	count int
}

func (h *benchHandler) Fire() {
	h.count++
	if h.count%2 == 0 {
		h.e.ScheduleHandler(h.e.Now()%13, h)
	}
}

const eventsPerIter = 100

func benchEngine() (nsPerEvent, allocsPerEvent float64) {
	res := testing.Benchmark(func(b *testing.B) {
		var e engine.Engine
		h := &benchHandler{e: &e}
		for i := 0; i < 128; i++ {
			e.ScheduleHandler(uint64(i%13), h)
		}
		e.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < eventsPerIter; j++ {
				e.ScheduleHandler(uint64(j%13), h)
			}
			e.Run()
		}
	})
	return float64(res.NsPerOp()) / eventsPerIter,
		float64(res.AllocsPerOp()) / eventsPerIter
}

// sweepConfig is the fixed benchmark sweep; cacheDir == "" disables the
// result cache.
func sweepConfig(cacheDir string) experiments.Config {
	return experiments.Config{
		Voltage:       0.625,
		RequestsPerCU: 2500,
		Seed:          1,
		Workloads:     []string{"nekbone", "quicksilver", "xsbench", "fft"},
		Parallelism:   1,
		CacheDir:      cacheDir,
	}
}

func benchSweep(cacheDir string) (float64, error) {
	start := time.Now()
	if _, err := experiments.Run(sweepConfig(cacheDir)); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// enforce compares a fresh measurement against the committed baseline and
// returns the violations (empty = within budget). The two throughput
// metrics gate at 15%; allocs_per_event gates absolutely at zero — the
// historical baseline entry predates the allocation-free rewrite, and any
// nonzero measurement today means a hot path grew an allocation (e.g. an
// instrumentation hook escaping its nil-observer guard). The cold/warm
// cache numbers track sweep_seconds plus
// I/O that CI runners make too noisy to bound tightly.
func enforce(baseline, cur point) []string {
	const maxRegress = 1.15
	var bad []string
	if baseline.NsPerEvent > 0 && cur.NsPerEvent > baseline.NsPerEvent*maxRegress {
		bad = append(bad, fmt.Sprintf("ns_per_event %.1f exceeds baseline %.1f by more than 15%%",
			cur.NsPerEvent, baseline.NsPerEvent))
	}
	if baseline.SweepSeconds > 0 && cur.SweepSeconds > baseline.SweepSeconds*maxRegress {
		bad = append(bad, fmt.Sprintf("sweep_seconds %.3f exceeds baseline %.3f by more than 15%%",
			cur.SweepSeconds, baseline.SweepSeconds))
	}
	if cur.AllocsPerEvent > 0 {
		bad = append(bad, fmt.Sprintf("allocs_per_event %.2f, want 0 (steady state must stay allocation-free)",
			cur.AllocsPerEvent))
	}
	return bad
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output file for the benchmark report")
	gate := flag.Bool("enforce", false, "exit nonzero when ns_per_event or sweep_seconds regresses >15% against the file's baseline entry, or when allocs_per_event is nonzero")
	flag.Parse()

	ns, allocs := benchEngine()
	fmt.Fprintf(os.Stderr, "engine: %.1f ns/event, %.2f allocs/event\n", ns, allocs)
	sweep, err := benchSweep("")
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sweep:  %.3f s (4 workloads, 2500 req/CU, serial, no cache)\n", sweep)

	cacheDir, err := os.MkdirTemp("", "killi-bench-cache-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(cacheDir)
	cold, err := benchSweep(cacheDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: cold sweep: %v\n", err)
		os.Exit(1)
	}
	warm, err := benchSweep(cacheDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: warm sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cache:  cold %.3f s -> warm %.3f s (%.1f%% of cold)\n",
		cold, warm, 100*warm/cold)

	cur := point{
		NsPerEvent:       ns,
		AllocsPerEvent:   allocs,
		SweepSeconds:     sweep,
		SweepColdSeconds: cold,
		SweepWarmSeconds: warm,
	}
	rep := report{Baseline: cur, Current: cur}
	if prev, err := os.ReadFile(*out); err == nil {
		var old report
		if json.Unmarshal(prev, &old) == nil && old.Baseline != (point{}) {
			rep.Baseline = old.Baseline
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "killi-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (baseline sweep %.3fs -> current %.3fs, %.2fx; warm cache %.3fs)\n",
		*out, rep.Baseline.SweepSeconds, rep.Current.SweepSeconds,
		rep.Baseline.SweepSeconds/rep.Current.SweepSeconds, warm)

	if *gate {
		if bad := enforce(rep.Baseline, cur); len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintf(os.Stderr, "killi-bench: REGRESSION: %s\n", b)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "killi-bench: within baseline budget")
	}
}
