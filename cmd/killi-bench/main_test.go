package main

import (
	"strings"
	"testing"
)

// goodPoint is a baseline/current pair that passes every gate.
func goodPoint() point {
	return point{
		NsPerEvent:                100,
		AllocsPerEvent:            0,
		SingleRunSeconds:          0.03,
		SweepSeconds:              1.1,
		SweepColdSeconds:          1.0,
		SweepWarmSeconds:          0.004,
		ServerColdRPS:             25,
		ServerHotRPS:              4500,
		CampaignDiesPerSecond:     11,
		CampaignWarmDiesPerSecond: 400,
		SingleRunCycles:           65000,
		SingleRunSerialTimestamps: 24000,
		SingleRunRoundsK4:         12000,
	}
}

func assertViolation(t *testing.T, bad []string, substr string) {
	t.Helper()
	for _, b := range bad {
		if strings.Contains(b, substr) {
			return
		}
	}
	t.Errorf("no violation mentioning %q in %v", substr, bad)
}

func TestEnforceCleanPass(t *testing.T) {
	if bad := enforce(goodPoint(), goodPoint()); len(bad) != 0 {
		t.Fatalf("identical measurement flagged: %v", bad)
	}
}

func TestEnforceThroughputRegressions(t *testing.T) {
	base := goodPoint()
	cur := base
	cur.NsPerEvent = base.NsPerEvent * 1.2
	cur.SweepSeconds = base.SweepSeconds * 1.2
	cur.SweepWarmSeconds = base.SweepWarmSeconds * 2.5
	bad := enforce(base, cur)
	assertViolation(t, bad, "ns_per_event")
	assertViolation(t, bad, "sweep_seconds")
	assertViolation(t, bad, "sweep_warm_seconds")
	if len(bad) != 3 {
		t.Fatalf("want exactly 3 violations, got %v", bad)
	}
	// Within budget: 10% over is fine.
	cur = base
	cur.SweepSeconds = base.SweepSeconds * 1.1
	if bad := enforce(base, cur); len(bad) != 0 {
		t.Fatalf("10%% sweep drift flagged: %v", bad)
	}
	// The fsync-bound cold sweep gets 1.5x of headroom, not 15%: a 30%
	// swing is host I/O noise, a 60% swing is a cache-write regression.
	cur = base
	cur.SweepColdSeconds = base.SweepColdSeconds * 1.3
	if bad := enforce(base, cur); len(bad) != 0 {
		t.Fatalf("30%% cold-sweep drift flagged: %v", bad)
	}
	cur.SweepColdSeconds = base.SweepColdSeconds * 1.6
	assertViolation(t, enforce(base, cur), "sweep_cold_seconds")
}

// TestEnforceThroughputFloors pins the downward gates: campaign dies/s
// fails below base/1.5, warm-request RPS only below base/2 (single-core
// HTTP throughput is noisy, a halving is a cache-bypass shape), and
// improvement in either direction never fires.
func TestEnforceThroughputFloors(t *testing.T) {
	base := goodPoint()

	cur := base
	cur.CampaignDiesPerSecond = base.CampaignDiesPerSecond / 1.7
	assertViolation(t, enforce(base, cur), "campaign_dies_per_second")

	cur = base
	cur.ServerHotRPS = base.ServerHotRPS / 2.5
	assertViolation(t, enforce(base, cur), "server_hot_rps")

	// Inside the floors: 40% slower campaigns and 40% slower warm requests
	// are host noise, not regressions; faster is always fine.
	cur = base
	cur.CampaignDiesPerSecond = base.CampaignDiesPerSecond / 1.4
	cur.ServerHotRPS = base.ServerHotRPS / 1.4
	if bad := enforce(base, cur); len(bad) != 0 {
		t.Fatalf("in-floor throughput drift flagged: %v", bad)
	}
	cur = base
	cur.CampaignDiesPerSecond = base.CampaignDiesPerSecond * 3
	cur.ServerHotRPS = base.ServerHotRPS * 3
	if bad := enforce(base, cur); len(bad) != 0 {
		t.Fatalf("throughput improvement flagged: %v", bad)
	}
}

// TestEnforceWarmCampaignGate pins the relative warm-campaign floor: the
// gate compares against the same run's cold rate, not the baseline, so a
// uniformly slow host passes while a cache that stopped answering fails.
func TestEnforceWarmCampaignGate(t *testing.T) {
	base := goodPoint()

	cur := base
	cur.CampaignWarmDiesPerSecond = cur.CampaignDiesPerSecond * 8
	assertViolation(t, enforce(base, cur), "campaign_warm_dies_per_second")

	// Exactly at the floor passes; a uniformly slow host (both rates down
	// 3x, ratio preserved) is noise, not a regression.
	cur = base
	cur.CampaignWarmDiesPerSecond = cur.CampaignDiesPerSecond * 10
	if bad := enforce(base, cur); len(bad) != 0 {
		t.Fatalf("10x warm campaign flagged: %v", bad)
	}
	cur = base
	cur.CampaignDiesPerSecond = base.CampaignDiesPerSecond / 1.4
	cur.CampaignWarmDiesPerSecond = base.CampaignWarmDiesPerSecond / 1.4
	if bad := enforce(base, cur); len(bad) != 0 {
		t.Fatalf("uniformly slow host flagged: %v", bad)
	}
}

func TestEnforceAllocGate(t *testing.T) {
	cur := goodPoint()
	cur.AllocsPerEvent = 0.01
	assertViolation(t, enforce(goodPoint(), cur), "allocs_per_event")
}

// TestEnforceSchedulingGates pins the deterministic counters: cycles and
// serial timestamps gate exactly (any difference is a semantic change),
// rounds may only decrease, and rounds × 5 must stay within cycles.
func TestEnforceSchedulingGates(t *testing.T) {
	base := goodPoint()

	cur := base
	cur.SingleRunCycles++
	assertViolation(t, enforce(base, cur), "single_run_cycles")

	cur = base
	cur.SingleRunSerialTimestamps--
	assertViolation(t, enforce(base, cur), "single_run_serial_timestamps")

	cur = base
	cur.SingleRunRoundsK4++
	assertViolation(t, enforce(base, cur), "coalescing regressed")

	// Fewer rounds than baseline is an improvement, not a violation.
	cur = base
	cur.SingleRunRoundsK4 = base.SingleRunRoundsK4 / 2
	if bad := enforce(base, cur); len(bad) != 0 {
		t.Fatalf("round-count improvement flagged: %v", bad)
	}

	// The 5x coalescing floor is absolute, even when the baseline agrees.
	cur = base
	cur.SingleRunCycles = cur.SingleRunRoundsK4 * 4
	base5 := base
	base5.SingleRunCycles = cur.SingleRunCycles
	assertViolation(t, enforce(base5, cur), "5")
}

// TestEnforceZeroBaselines pins that a zero-valued gated baseline field is
// itself a violation on every gated metric, deterministic ones included.
func TestEnforceZeroBaselines(t *testing.T) {
	bad := enforce(point{}, goodPoint())
	for _, name := range []string{
		"ns_per_event", "single_run_seconds", "sweep_seconds",
		"sweep_cold_seconds", "sweep_warm_seconds",
		"campaign_dies_per_second", "server_hot_rps",
		"single_run_cycles", "single_run_serial_timestamps", "single_run_rounds_k4",
	} {
		assertViolation(t, bad, name)
	}
}

// TestEnforceCurveWideHost pins the >= 4-CPU speedup gate: K=4 must be at
// least 2x faster than K=1, regardless of the recorded baseline.
func TestEnforceCurveWideHost(t *testing.T) {
	base := map[string]float64{"1": 0.03, "2": 0.04, "4": 0.06, "8": 0.09}
	win := map[string]float64{"1": 0.030, "2": 0.020, "4": 0.014, "8": 0.012}
	if bad := enforceCurve(base, win, 8); len(bad) != 0 {
		t.Fatalf("2.1x speedup flagged on an 8-CPU host: %v", bad)
	}
	lose := map[string]float64{"1": 0.030, "2": 0.025, "4": 0.016, "8": 0.015}
	assertViolation(t, enforceCurve(base, lose, 4), "not >= 2x faster")
	assertViolation(t, enforceCurve(base, map[string]float64{"1": 0.03}, 4), "missing")
}

// TestEnforceCurveNarrowHost pins the 1-core fallback: each point gates
// against the committed baseline curve at 1.5x, and a missing baseline
// point is an error, not a skip.
func TestEnforceCurveNarrowHost(t *testing.T) {
	base := map[string]float64{"1": 0.03, "2": 0.04, "4": 0.06, "8": 0.09}
	same := map[string]float64{"1": 0.031, "2": 0.042, "4": 0.058, "8": 0.093}
	if bad := enforceCurve(base, same, 1); len(bad) != 0 {
		t.Fatalf("in-budget curve flagged on a 1-CPU host: %v", bad)
	}
	worse := map[string]float64{"1": 0.031, "2": 0.042, "4": 0.095, "8": 0.093}
	assertViolation(t, enforceCurve(base, worse, 1), "K=4")
	assertViolation(t, enforceCurve(map[string]float64{"1": 0.03}, same, 2), "no K=2 point")
	// The wide-host gate must NOT fire on a narrow host even when K=4 is
	// slower than K=1 — a 1-core curve is honestly overhead-only.
	if bad := enforceCurve(base, same, 2); len(bad) != 0 {
		t.Fatalf("overhead-only curve flagged on a 2-CPU host: %v", bad)
	}
}
