// killi-coverage regenerates Figure 6: the percentage of cache lines each
// technique classifies correctly (single- vs multi-bit LV error detection)
// across supply voltages, with no MBIST pre-characterization — the paper's
// §5.3 analytic model.
package main

import (
	"flag"
	"fmt"

	"killi/internal/analytic"
	"killi/internal/asciiplot"
	"killi/internal/faultmodel"
)

func main() {
	lo := flag.Float64("vmin", 0.50, "lowest normalized voltage")
	hi := flag.Float64("vmax", 0.70, "highest normalized voltage")
	step := flag.Float64("step", 0.0125, "voltage step")
	plot := flag.Bool("plot", false, "render the curves as an ASCII chart")
	flag.Parse()

	m := faultmodel.Default()
	var vs []float64
	for v := *lo; v <= *hi+1e-9; v += *step {
		vs = append(vs, v)
	}
	curve := analytic.CoverageCurve(vs, func(v float64) float64 {
		return m.CellFailureProb(v, 1.0)
	})

	if *plot {
		ks := make([]float64, len(curve))
		fl := make([]float64, len(curve))
		se := make([]float64, len(curve))
		de := make([]float64, len(curve))
		ms := make([]float64, len(curve))
		for i, pt := range curve {
			ks[i], fl[i], se[i], de[i], ms[i] = pt.Killi, pt.FLAIR, pt.SECDED, pt.DECTED, pt.MSECC
		}
		fmt.Print(asciiplot.Render("Figure 6: % lines classified correctly vs V/VDD", vs,
			[]asciiplot.Series{
				{Name: "SECDED", Y: se, Marker: 's'},
				{Name: "DECTED", Y: de, Marker: 'd'},
				{Name: "MS-ECC", Y: ms, Marker: 'm'},
				{Name: "FLAIR", Y: fl, Marker: 'F'},
				{Name: "Killi", Y: ks, Marker: 'K'},
			}, asciiplot.Options{Width: 68, Height: 18, YMin: 0, YMax: 100}))
		return
	}
	fmt.Println("# Figure 6: % lines classified correctly (no MBIST)")
	fmt.Printf("%-8s %-12s %-10s %-10s %-10s %-10s %-10s\n",
		"V/VDD", "P_cell", "Killi", "FLAIR", "SECDED", "DECTED", "MS-ECC")
	for _, pt := range curve {
		fmt.Printf("%-8.4f %-12.3e %-10.4f %-10.4f %-10.4f %-10.4f %-10.4f\n",
			pt.Voltage, pt.PCell, pt.Killi, pt.FLAIR, pt.SECDED, pt.DECTED, pt.MSECC)
	}
}
