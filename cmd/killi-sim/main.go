// killi-sim regenerates the paper's simulation-driven figures on the GPU
// memory-hierarchy model:
//
//	-fig 4: kernel execution time at 0.625×VDD normalized to a fault-free
//	        system at nominal VDD, per workload and scheme (Figure 4)
//	-fig 5: L2 misses-per-kilo-instruction, split into compute-bound and
//	        memory-bound panels (Figure 5)
//
// Both figures come from the same sweep; the flag selects what to print.
// -parallel fans the workload × scheme simulations out over a worker pool
// (default GOMAXPROCS); results are bit-for-bit identical to -parallel 1.
// -cache <dir> keeps a content-addressed result cache across invocations,
// so re-running a figure with unchanged inputs is a disk read per task;
// cached rows are bit-identical to recomputed ones.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"killi/internal/experiments"
	"killi/internal/workload"
)

func main() {
	fig := flag.Int("fig", 4, "figure to regenerate (4, 5, or 45 for both)")
	voltage := flag.Float64("voltage", 0.625, "LV operating point (x VDD)")
	requests := flag.Int("requests", 12000, "trace requests per CU")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default: all ten)")
	warmup := flag.Int("warmup", 2, "warm-up kernels before the measured run (DFH persists; 0 includes training cost)")
	parallel := flag.Int("parallel", -1, "concurrent simulations (1 = serial, -1 = GOMAXPROCS); output is identical at any value")
	cacheDir := flag.String("cache", "", "directory for the content-addressed result cache (empty = recompute everything); cached rows are bit-identical")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the sweep) to this file")
	flag.Parse()

	switch *fig {
	case 4, 5, 45:
	default:
		fmt.Fprintf(os.Stderr, "killi-sim: unknown figure %d (want 4, 5, or 45)\n", *fig)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "killi-sim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "killi-sim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "killi-sim: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "killi-sim: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	cfg := experiments.Config{
		Voltage:       *voltage,
		RequestsPerCU: *requests,
		Seed:          *seed,
		WarmupKernels: *warmup,
		Parallelism:   *parallel,
		CacheDir:      *cacheDir,
	}
	cfg.Workloads = experiments.SplitList(*workloads)
	rows, err := experiments.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-sim: %v\n", err)
		os.Exit(1)
	}
	switch *fig {
	case 4:
		printFig4(rows, *voltage)
	case 5:
		printFig5(rows, *voltage)
	case 45:
		printFig4(rows, *voltage)
		fmt.Println()
		printFig5(rows, *voltage)
	}
}

func header(rows []experiments.Row) []string {
	if len(rows) == 0 {
		return nil
	}
	return rows[0].SchemeNames()
}

func printFig4(rows []experiments.Row, v float64) {
	fmt.Printf("# Figure 4: execution time at %.3fxVDD normalized to fault-free 1.0xVDD\n", v)
	names := header(rows)
	fmt.Printf("%-12s %-14s", "workload", "class")
	for _, n := range names {
		fmt.Printf(" %-12s", n)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-12s %-14s", r.Workload, r.Class)
		for _, n := range names {
			fmt.Printf(" %-12.4f", r.Normalized[n])
		}
		fmt.Println()
	}
}

func printFig5(rows []experiments.Row, v float64) {
	names := header(rows)
	for _, class := range []workload.Class{workload.ComputeBound, workload.MemoryBound} {
		fmt.Printf("# Figure 5 (%s panel): L2 MPKI at %.3fxVDD\n", class, v)
		fmt.Printf("%-12s %-10s", "workload", "baseline")
		for _, n := range names {
			fmt.Printf(" %-12s", n)
		}
		fmt.Println()
		for _, r := range rows {
			if r.Class != class {
				continue
			}
			fmt.Printf("%-12s %-10.2f", r.Workload, r.BaselineMPKI)
			for _, n := range names {
				fmt.Printf(" %-12.2f", r.MPKI[n])
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
