// killi-sim regenerates the paper's simulation-driven figures on the GPU
// memory-hierarchy model:
//
//	-fig 4: kernel execution time at 0.625×VDD normalized to a fault-free
//	        system at nominal VDD, per workload and scheme (Figure 4)
//	-fig 5: L2 misses-per-kilo-instruction, split into compute-bound and
//	        memory-bound panels (Figure 5)
//
// Both figures come from the same sweep; the flag selects what to print.
// The sweep runs as a job on the same internal/simserver engine that backs
// the killi-simd daemon, so the CLI and the service share one validation,
// caching, cancellation, and metrics path. -parallel fans the workload ×
// scheme simulations out over a worker pool (default GOMAXPROCS); results
// are bit-for-bit identical to -parallel 1. -cache <dir> keeps a
// content-addressed result cache across invocations, so re-running a figure
// with unchanged inputs is a disk read per task; cached rows are
// bit-identical to recomputed ones.
//
// SIGINT or SIGTERM during a sweep cancels the simulations at their next
// kernel boundary, sweeps stranded cache temporaries, and exits nonzero —
// an interrupted sweep never strands partial state.
//
// Observability: -timeseries out.jsonl and/or -trace-events out.json switch
// killi-sim into a single observed run (workload and scheme from
// -obs-workload / -obs-scheme) that records DFH training dynamics — state
// populations per epoch, every classification transition, ECC-cache
// pressure, interval L2 MPKI — as JSONL and/or Chrome trace_event JSON
// (load at https://ui.perfetto.dev), prints the run summary plus an ASCII
// training curve, and exits. -epoch sets the sampling epoch in cycles.
// -metrics-addr serves live sweep progress over HTTP (expvar JSON at
// /metrics) for watching long sweeps.
//
// Fault classes: -classes runs the sweep (or -misclass measurement) under a
// non-persistent fault population (intermittent / aging / transient strike
// mixes; see the grammar in the flag help). -misclass switches killi-sim
// into the DFH misclassification measurement: for each workload in
// -workloads (default xsbench) it runs one uncached simulation of
// -obs-scheme at -voltage, compares the trained DFH state against the
// fault-map ground-truth oracle, and prints the false-disable / false-trust
// / SDC table EXPERIMENTS.md embeds. -scrub-kernels re-tests disabled lines
// every N kernels during the measurement (0 = never).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"killi/internal/experiments"
	"killi/internal/faultmodel"
	"killi/internal/gpu"
	"killi/internal/obs"
	"killi/internal/simserver"
	"killi/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	fig := flag.Int("fig", 4, "figure to regenerate (4, 5, or 45 for both)")
	voltage := flag.Float64("voltage", 0.625, "LV operating point (x VDD)")
	requests := flag.Int("requests", 12000, "trace requests per CU")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default: all ten)")
	warmup := flag.Int("warmup", 2, "warm-up kernels before the measured run (DFH persists; 0 includes training cost)")
	parallel := flag.Int("parallel", -1, "concurrent simulations (1 = serial, -1 = GOMAXPROCS/shards); output is identical at any value")
	shards := flag.Int("shards", 1, "intra-run shard count for each simulation (bank-sharded engine); output is bit-identical at any value")
	cacheDir := flag.String("cache", "", "directory for the content-addressed result cache (empty = recompute everything); cached rows are bit-identical")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the sweep) to this file")
	timeseries := flag.String("timeseries", "", "record one observed run's time series to this JSONL file (see -obs-workload/-obs-scheme) and exit")
	traceEvents := flag.String("trace-events", "", "record one observed run as Chrome trace_event JSON to this file and exit")
	epoch := flag.Uint64("epoch", gpu.DefaultEpochCycles, "observation epoch length in cycles")
	obsWorkload := flag.String("obs-workload", "xsbench", "workload for the observed run")
	obsScheme := flag.String("obs-scheme", "killi-1:64", "protection scheme for the observed run: "+experiments.SchemeSyntax())
	metricsAddr := flag.String("metrics-addr", "", "serve live sweep progress over HTTP on this address (e.g. localhost:8060; expvar JSON at /metrics)")
	classes := flag.String("classes", "persistent", "fault-class population for the sweep or -misclass run: "+faultmodel.ClassSyntax())
	misclass := flag.Bool("misclass", false, "measure DFH misclassification against the ground-truth oracle (workloads from -workloads, scheme from -obs-scheme) and exit")
	scrubKernels := flag.Int("scrub-kernels", 0, "with -misclass: re-test disabled lines every N kernels (0 = never scrub)")
	flag.Parse()

	// Reject bad flag combinations before any work starts.
	if err := experiments.ValidateFlags(*requests, *parallel, *shards, runtime.GOMAXPROCS(0)); err != nil {
		fmt.Fprintf(os.Stderr, "killi-sim: %v\n", err)
		return 2
	}
	switch *fig {
	case 4, 5, 45:
	default:
		fmt.Fprintf(os.Stderr, "killi-sim: unknown figure %d (want 4, 5, or 45)\n", *fig)
		return 2
	}
	if _, err := faultmodel.ParseClassSpec(*classes); err != nil {
		fmt.Fprintf(os.Stderr, "killi-sim: -classes: %v\n", err)
		return 2
	}
	if *scrubKernels != 0 && !*misclass {
		fmt.Fprintln(os.Stderr, "killi-sim: -scrub-kernels applies only to -misclass runs")
		return 2
	}

	// ctx ends on the first SIGINT/SIGTERM; a second signal kills the
	// process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *misclass {
		err := misclassRun(ctx, *workloads, *obsScheme, *classes,
			*voltage, *requests, *seed, *warmup, *scrubKernels, *shards)
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "killi-sim: interrupted")
			return 130
		case err != nil:
			fmt.Fprintf(os.Stderr, "killi-sim: %v\n", err)
			return 1
		}
		return 0
	}

	if *timeseries != "" || *traceEvents != "" {
		err := observedRun(ctx, *timeseries, *traceEvents, *obsWorkload, *obsScheme,
			*voltage, *requests, *seed, *warmup, *epoch, *shards)
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "killi-sim: interrupted")
			return 130
		case err != nil:
			fmt.Fprintf(os.Stderr, "killi-sim: %v\n", err)
			return 1
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "killi-sim: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "killi-sim: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "killi-sim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "killi-sim: -memprofile: %v\n", err)
			}
		}()
	}

	var metrics *obs.Metrics
	if *metricsAddr != "" {
		metrics = obs.NewMetrics()
		addr, err := metrics.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "killi-sim: -metrics-addr: %v\n", err)
			return 1
		}
		defer metrics.Close()
		fmt.Fprintf(os.Stderr, "killi-sim: serving sweep progress at http://%s/metrics\n", addr)
	}

	// The sweep is one job on the in-process engine — the CLI is a thin
	// client of the API killi-simd serves over HTTP. One worker: the job's
	// own Parallelism fans out inside it.
	svc, err := simserver.New(simserver.Config{
		CacheDir: *cacheDir,
		Shards:   *shards,
		Workers:  1,
		Metrics:  metrics,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-sim: %v\n", err)
		return 1
	}
	res, err := svc.Submit(ctx, simserver.JobRequest{
		Kind:          simserver.KindSweep,
		Voltage:       *voltage,
		RequestsPerCU: *requests,
		Seed:          *seed,
		WarmupKernels: *warmup,
		Shards:        *shards,
		Parallelism:   *parallel,
		Workloads:     experiments.SplitList(*workloads),
		FaultClasses:  []string{*classes},
	})
	if ctx.Err() != nil {
		// Interrupted: force the drain with an already-expired context so
		// workers stop at their next kernel boundary and the engine sweeps
		// stranded cache temp files, then report the interruption.
		expired, cancel := context.WithCancel(context.Background())
		cancel()
		_ = svc.Close(expired)
		fmt.Fprintln(os.Stderr, "killi-sim: interrupted")
		return 130
	}
	if err != nil {
		_ = svc.Close(context.Background())
		fmt.Fprintf(os.Stderr, "killi-sim: %v\n", err)
		return 1
	}
	if err := svc.Close(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "killi-sim: %v\n", err)
		return 1
	}

	switch *fig {
	case 4:
		printFig4(res.Rows, *voltage)
	case 5:
		printFig5(res.Rows, *voltage)
	case 45:
		printFig4(res.Rows, *voltage)
		fmt.Println()
		printFig5(res.Rows, *voltage)
	}
	return 0
}

// misclassRun runs the DFH misclassification measurement for each named
// workload (default xsbench) against the given scheme and prints the
// ground-truth comparison table. Runs are never cached: the measurement
// needs live counters.
func misclassRun(ctx context.Context, workloadsCSV, schemeName, classes string,
	voltage float64, requests int, seed uint64, warmup, scrub, shards int) error {
	names := experiments.SplitList(workloadsCSV)
	if len(names) == 0 {
		names = []string{"xsbench"}
	}
	cfg := experiments.Config{
		RequestsPerCU: requests,
		Seed:          seed,
		WarmupKernels: warmup,
		Shards:        shards,
		FaultClasses:  classes,
		ScrubKernels:  scrub,
	}
	var rows []experiments.MisclassRow
	for _, w := range names {
		row, err := experiments.RunMisclass(ctx, cfg, w, schemeName, voltage)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	return experiments.WriteMisclassTable(os.Stdout, rows)
}

// observedRun simulates one workload × scheme pair with a Collector
// attached and writes the requested exports, then prints the run summary —
// including its own wall-clock, so the observation overhead claim is
// measured rather than asserted — and the DFH training curve.
func observedRun(ctx context.Context, tsPath, tePath, workloadName, schemeName string,
	voltage float64, requests int, seed uint64, warmup int, epoch uint64, shards int) error {
	newScheme, err := experiments.SchemeFactoryByName(schemeName)
	if err != nil {
		return err
	}
	col := obs.NewCollector()
	cfg := experiments.Config{
		Voltage:       voltage,
		RequestsPerCU: requests,
		Seed:          seed,
		WarmupKernels: warmup,
		Shards:        shards,
	}
	start := time.Now()
	res, err := experiments.RunOneObserved(ctx, cfg, workloadName, newScheme, voltage, col, epoch)
	wall := time.Since(start)
	if err != nil {
		return err
	}
	write := func(path string, render func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if tsPath != "" {
		if err := write(tsPath, func(f *os.File) error { return col.WriteJSONL(f) }); err != nil {
			return fmt.Errorf("-timeseries: %w", err)
		}
		fmt.Printf("wrote %d resets, %d transitions, %d epochs to %s\n",
			len(col.Resets()), len(col.Transitions()), len(col.Epochs()), tsPath)
	}
	if tePath != "" {
		if err := write(tePath, func(f *os.File) error { return col.WriteTraceEvents(f) }); err != nil {
			return fmt.Errorf("-trace-events: %w", err)
		}
		fmt.Printf("wrote trace_event JSON to %s (open at https://ui.perfetto.dev)\n", tePath)
	}
	fmt.Printf("\n%s × %s @ %.3fxVDD, %d requests/CU, %d warmup kernels, epoch %d cycles, %d shards\n",
		workloadName, schemeName, voltage, requests, warmup, epoch, shards)
	fmt.Printf("cycles %d, instructions %d, L2 MPKI %.2f, disabled lines %d\n",
		res.Cycles, res.Instructions, res.MPKI(), res.DisabledLines)
	fmt.Printf("observed run wall-clock: %.3fs\n", wall.Seconds())
	pop := col.Populations()
	fmt.Printf("final DFH populations: stable0 %d, initial %d, stable1 %d, disabled %d\n\n",
		pop[obs.StateStable0], pop[obs.StateInitial], pop[obs.StateStable1], pop[obs.StateDisabled])
	if curve := col.TrainingCurve(); curve != "" {
		fmt.Println(curve)
	}
	return nil
}

func header(rows []experiments.Row) []string {
	if len(rows) == 0 {
		return nil
	}
	return rows[0].SchemeNames()
}

func printFig4(rows []experiments.Row, v float64) {
	fmt.Printf("# Figure 4: execution time at %.3fxVDD normalized to fault-free 1.0xVDD\n", v)
	names := header(rows)
	fmt.Printf("%-12s %-14s", "workload", "class")
	for _, n := range names {
		fmt.Printf(" %-12s", n)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-12s %-14s", r.Workload, r.Class)
		for _, n := range names {
			fmt.Printf(" %-12.4f", r.Normalized[n])
		}
		fmt.Println()
	}
}

func printFig5(rows []experiments.Row, v float64) {
	names := header(rows)
	for _, class := range []workload.Class{workload.ComputeBound, workload.MemoryBound} {
		fmt.Printf("# Figure 5 (%s panel): L2 MPKI at %.3fxVDD\n", class, v)
		fmt.Printf("%-12s %-10s", "workload", "baseline")
		for _, n := range names {
			fmt.Printf(" %-12s", n)
		}
		fmt.Println()
		for _, r := range rows {
			if r.Class != class {
				continue
			}
			fmt.Printf("%-12s %-10.2f", r.Workload, r.BaselineMPKI)
			for _, n := range names {
				fmt.Printf(" %-12.2f", r.MPKI[n])
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
