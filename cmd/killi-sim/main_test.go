package main

import (
	"bytes"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildSim builds the killi-sim binary into a temp dir.
func buildSim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "killi-sim")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestInterruptedSweepStrandsNothing pins the shutdown story end to end: a
// SIGINT in the middle of a caching sweep must cancel the simulations,
// sweep every stranded simcache temp file, and exit nonzero — never report
// success or leave partial state for the next invocation to trip over.
func TestInterruptedSweepStrandsNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and interrupts a real binary; skipped in -short")
	}
	bin := buildSim(t)
	cacheDir := t.TempDir()

	// Big enough that the sweep is still mid-simulation when the signal
	// lands a second in (one kernel alone runs for seconds at this trace
	// length), small enough that the post-signal kernel-boundary cancel
	// returns promptly.
	cmd := exec.Command(bin,
		"-fig", "4", "-workloads", "xsbench",
		"-requests", "200000", "-parallel", "2", "-cache", cacheDir)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1 * time.Second)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatalf("signalling: %v (did the sweep finish before the signal?)", err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		var exit *exec.ExitError
		if err == nil {
			t.Fatalf("interrupted sweep exited 0; stderr:\n%s", stderr.String())
		} else if !errors.As(err, &exit) {
			t.Fatalf("waiting: %v", err)
		} else if code := exit.ExitCode(); code != 130 {
			t.Errorf("exit code %d, want 130; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(60 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("sweep did not exit within 60s of SIGINT; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr does not report the interruption:\n%s", stderr.String())
	}

	temps, err := filepath.Glob(filepath.Join(cacheDir, "put-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(temps) != 0 {
		t.Errorf("interrupted sweep stranded %d cache temp files: %v", len(temps), temps)
	}
}

// TestFlagValidation pins the fail-fast contract: nonsense flag
// combinations exit 2 with a one-line error before any simulation starts.
func TestFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real binary; skipped in -short")
	}
	bin := buildSim(t)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"zero requests", []string{"-requests", "0"}},
		{"negative shards", []string{"-shards", "-3"}},
		{"zero parallel", []string{"-parallel", "0"}},
		{"oversubscribed", []string{"-parallel", "64", "-shards", "64"}},
		{"unknown figure", []string{"-fig", "6"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, tc.args...)
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			err := cmd.Run()
			var exit *exec.ExitError
			if !errors.As(err, &exit) || exit.ExitCode() != 2 {
				t.Fatalf("%v: err %v, want exit code 2; stderr:\n%s", tc.args, err, stderr.String())
			}
			if msg := stderr.String(); strings.Count(msg, "\n") != 1 {
				t.Errorf("want a one-line error, got:\n%s", msg)
			}
		})
	}
}
