// killi-faults regenerates the paper's fault-characterization figures:
//
//	-fig 1: SRAM cell failure probability vs normalized voltage, per test
//	        kind and frequency (Figure 1)
//	-fig 2: percentage of 64 B lines with 0 / 1 / ≥2 faults vs voltage
//	        (Figure 2), both analytic and sampled from a fault map
//
// -classes attaches a fault-class spec (faultmodel.ClassSyntax) to the
// figure-2 map and appends a class-breakdown table: how many sampled faults
// the deterministic classing hash labels persistent, intermittent, and
// aging, against the spec's expected fractions.
//
// Output is whitespace-aligned text, one series per column.
package main

import (
	"flag"
	"fmt"
	"os"

	"killi/internal/asciiplot"
	"killi/internal/bitvec"
	"killi/internal/faultmodel"
	"killi/internal/xrand"
)

func main() {
	fig := flag.Int("fig", 1, "figure to regenerate (1 or 2)")
	seed := flag.Uint64("seed", 1, "fault map seed (figure 2)")
	lines := flag.Int("lines", 32768, "lines sampled for the empirical figure 2 columns")
	plot := flag.Bool("plot", false, "render the figure as an ASCII chart")
	classes := flag.String("classes", "persistent", "fault-class spec for the figure-2 class breakdown: "+faultmodel.ClassSyntax())
	flag.Parse()

	spec, err := faultmodel.ParseClassSpec(*classes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-faults: -classes: %v\n", err)
		os.Exit(2)
	}
	m := faultmodel.Default()
	switch *fig {
	case 1:
		if *plot {
			plotFig1(m)
			return
		}
		fig1(m)
	case 2:
		if *plot {
			plotFig2(m)
			return
		}
		fig2(m, *seed, *lines, spec)
	default:
		fmt.Fprintf(os.Stderr, "killi-faults: unknown figure %d\n", *fig)
		os.Exit(2)
	}
}

func plotFig1(m faultmodel.Model) {
	var vs []float64
	var rd1, wr1, rd04 []float64
	for v := 0.50; v <= 0.80001; v += 0.0125 {
		vs = append(vs, v)
		rd1 = append(rd1, m.TestFailureProb(faultmodel.ReadDisturb, v, 1.0))
		wr1 = append(wr1, m.TestFailureProb(faultmodel.Writeability, v, 1.0))
		rd04 = append(rd04, m.TestFailureProb(faultmodel.ReadDisturb, v, 0.4))
	}
	fmt.Print(asciiplot.Render("Figure 1: SRAM cell failure probability vs V/VDD (log scale)", vs,
		[]asciiplot.Series{
			{Name: "read disturb @1GHz", Y: rd1, Marker: 'r'},
			{Name: "writeability @1GHz", Y: wr1, Marker: 'w'},
			{Name: "read disturb @400MHz", Y: rd04, Marker: '4'},
		}, asciiplot.Options{Width: 68, Height: 18, LogY: true}))
}

func fig1(m faultmodel.Model) {
	fmt.Println("# Figure 1: SRAM cell failure probability vs normalized VDD")
	fmt.Printf("%-8s %-14s %-14s %-14s %-14s\n",
		"V/VDD", "read@1GHz", "write@1GHz", "read@400MHz", "write@400MHz")
	for v := 0.50; v <= 1.0001; v += 0.025 {
		fmt.Printf("%-8.3f %-14.3e %-14.3e %-14.3e %-14.3e\n", v,
			m.TestFailureProb(faultmodel.ReadDisturb, v, 1.0),
			m.TestFailureProb(faultmodel.Writeability, v, 1.0),
			m.TestFailureProb(faultmodel.ReadDisturb, v, 0.4),
			m.TestFailureProb(faultmodel.Writeability, v, 0.4))
	}
}

func plotFig2(m faultmodel.Model) {
	var vs, p0, p1, p2 []float64
	for v := 0.55; v <= 0.70001; v += 0.005 {
		d := m.LineFaultDist(bitvec.LineBits, v, 1.0)
		vs = append(vs, v)
		p0 = append(p0, d.P0*100)
		p1 = append(p1, d.P1*100)
		p2 = append(p2, d.P2Plus*100)
	}
	fmt.Print(asciiplot.Render("Figure 2: % of 64B lines by fault count vs V/VDD", vs,
		[]asciiplot.Series{
			{Name: "0 faults", Y: p0, Marker: '0'},
			{Name: "1 fault", Y: p1, Marker: '1'},
			{Name: ">=2 faults", Y: p2, Marker: '2'},
		}, asciiplot.Options{Width: 68, Height: 18, YMin: 0, YMax: 100}))
}

func fig2(m faultmodel.Model, seed uint64, lines int, spec faultmodel.ClassSpec) {
	fmt.Println("# Figure 2: % of 64B lines with 0 / 1 / >=2 faults (1 GHz)")
	fmt.Printf("%-8s %-10s %-10s %-10s %-12s %-12s %-12s\n",
		"V/VDD", "P0", "P1", "P2+", "emp0", "emp1", "emp2+")
	fm := faultmodel.NewMap(xrand.New(seed), m, lines, bitvec.LineBits, 0.55, 1.0)
	for _, v := range []float64{0.750, 0.725, 0.700, 0.675, 0.650, 0.625, 0.600, 0.575, 0.550} {
		d := m.LineFaultDist(bitvec.LineBits, v, 1.0)
		zero, one, two := fm.CountAtVoltage(v)
		n := float64(lines)
		fmt.Printf("%-8.3f %-10.4f %-10.4f %-10.4f %-12.4f %-12.4f %-12.4f\n",
			v, d.P0*100, d.P1*100, d.P2Plus*100,
			float64(zero)/n*100, float64(one)/n*100, float64(two)/n*100)
	}
	if !spec.IsZero() {
		classBreakdown(fm, seed, spec)
	}
}

// classBreakdown reports how the deterministic classing hash labels the
// sampled faults under the given spec, next to the fractions the spec asks
// for — a direct check that the pure-hash selection hits its targets.
func classBreakdown(fm *faultmodel.Map, seed uint64, spec faultmodel.ClassSpec) {
	counts := faultmodel.ClassCounts(fm, faultmodel.ClassSeed(seed), spec)
	total := counts[faultmodel.Persistent] + counts[faultmodel.Intermittent] + counts[faultmodel.Aging]
	fmt.Printf("\n# Fault-class breakdown for %q (%d sampled faults)\n", spec.String(), total)
	fmt.Printf("%-14s %-10s %-10s %-10s\n", "class", "faults", "measured", "spec")
	want := [3]float64{1 - spec.IntermittentFrac - spec.AgingFrac, spec.IntermittentFrac, spec.AgingFrac}
	for _, c := range []faultmodel.FaultClass{faultmodel.Persistent, faultmodel.Intermittent, faultmodel.Aging} {
		frac := 0.0
		if total > 0 {
			frac = float64(counts[c]) / float64(total)
		}
		fmt.Printf("%-14s %-10d %-10.4f %-10.4f\n", c, counts[c], frac, want[c])
	}
	if spec.TransientRate > 0 {
		fmt.Printf("transient: strike process at %g flips/line/cycle (events, not sampled cells)\n", spec.TransientRate)
	}
}
