// killi-vmin finds, for each protection scheme, the minimum reliable
// operating voltage (the paper's V_min) subject to capacity and
// classification-coverage constraints, and reports the L2 power at that
// point — the deployment question the paper's §5.5 optimizes.
//
//	go run ./cmd/killi-vmin -capacity 90 -coverage 99.9
package main

import (
	"flag"
	"fmt"

	"killi/internal/analytic"
	"killi/internal/bitvec"
	"killi/internal/faultmodel"
)

type scheme struct {
	name string
	// capacity returns the usable-line fraction (%) at per-cell fault
	// probability p.
	capacity func(p float64) float64
	// coverage returns the correct-classification percentage at p.
	coverage func(p float64) float64
	// power returns the normalized L2 power (%) at voltage v.
	power func(v float64) float64
}

func schemes() []scheme {
	line := bitvec.LineBits
	return []scheme{
		{
			name:     "secded-line",
			capacity: func(p float64) float64 { return analytic.DetectCoverage(line+11, 1, p) },
			coverage: func(p float64) float64 { return analytic.DetectCoverage(523, 2, p) },
			power:    analytic.PowerFLAIR, // SECDED-class storage
		},
		{
			name:     "dected-line",
			capacity: func(p float64) float64 { return analytic.DetectCoverage(line+21, 2, p) },
			coverage: func(p float64) float64 { return analytic.DetectCoverage(533, 3, p) },
			power:    analytic.PowerDECTED,
		},
		{
			name:     "msecc",
			capacity: func(p float64) float64 { return analytic.DetectCoverage(1018, 11, p) },
			coverage: func(p float64) float64 { return analytic.DetectCoverage(1018, 11, p) },
			power:    analytic.PowerMSECC,
		},
		{
			name:     "flair",
			capacity: func(p float64) float64 { return analytic.DetectCoverage(line+11, 1, p) },
			coverage: analytic.FLAIRCoverage,
			power:    analytic.PowerFLAIR,
		},
		{
			name:     "killi-1:64",
			capacity: func(p float64) float64 { return analytic.DetectCoverage(line, 1, p) },
			coverage: analytic.KilliCoverage,
			power:    func(v float64) float64 { return analytic.PowerKilli(v, 64) },
		},
	}
}

func main() {
	minCapacity := flag.Float64("capacity", 90, "minimum usable L2 capacity (%)")
	minCoverage := flag.Float64("coverage", 99.9, "minimum classification coverage (%)")
	step := flag.Float64("step", 0.005, "voltage search step")
	flag.Parse()

	m := faultmodel.Default()
	fmt.Printf("# Vmin per scheme for capacity >= %.1f%% and coverage >= %.2f%% (1 GHz)\n",
		*minCapacity, *minCoverage)
	fmt.Printf("%-14s %-8s %-12s %-12s %-10s %-10s\n",
		"scheme", "Vmin", "capacity%", "coverage%", "power%", "saving%")
	for _, s := range schemes() {
		vmin, ok := findVmin(s, m, *minCapacity, *minCoverage, *step)
		if !ok {
			fmt.Printf("%-14s %-8s constraints unreachable above 0.5xVDD\n", s.name, "-")
			continue
		}
		p := m.CellFailureProb(vmin, 1.0)
		pw := s.power(vmin)
		fmt.Printf("%-14s %-8.4f %-12.3f %-12.4f %-10.1f %-10.1f\n",
			s.name, vmin, s.capacity(p), s.coverage(p), pw, analytic.PowerSavingVsNominal(pw))
	}
}

// findVmin scans downward from nominal and returns the lowest voltage
// still meeting both constraints (constraints are monotone in voltage, so
// the scan is exact to one step).
func findVmin(s scheme, m faultmodel.Model, minCap, minCov, step float64) (float64, bool) {
	best, found := 0.0, false
	for v := 1.0; v >= 0.5; v -= step {
		p := m.CellFailureProb(v, 1.0)
		if s.capacity(p) >= minCap && s.coverage(p) >= minCov {
			best, found = v, true
			continue
		}
		break
	}
	return best, found
}
