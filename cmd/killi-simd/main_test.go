package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func buildSimd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "killi-simd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a localhost port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDaemonLifecycle boots the real daemon, round-trips a job (cold, then
// cache-hit), and checks SIGTERM performs the graceful shutdown the docs
// promise: drain, sweep temp files, exit zero.
func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real binary; skipped in -short")
	}
	bin := buildSimd(t)
	cacheDir := t.TempDir()
	addr := freeAddr(t)

	cmd := exec.Command(bin, "-addr", addr, "-cache", cacheDir)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the listener.
	url := "http://" + addr
	var up bool
	for i := 0; i < 100 && !up; i++ {
		if resp, err := http.Get(url + "/healthz"); err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
		}
		if !up {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !up {
		t.Fatalf("daemon never came up; stderr:\n%s", stderr.String())
	}

	job := `{"kind":"run","workload":"xsbench","scheme":"killi-1:64","requests_per_cu":300}`
	post := func() map[string]any {
		resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(job))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	cold, warm := post(), post()
	if cold["cached"] == true {
		t.Error("first submission claims a cache hit on an empty cache")
	}
	if warm["cached"] != true && warm["coalesced"] != true {
		t.Errorf("second identical submission simulated again: %v", warm)
	}
	if fmt.Sprint(cold["run"]) != fmt.Sprint(warm["run"]) {
		t.Errorf("cached result diverges:\ncold %v\nwarm %v", cold["run"], warm["run"])
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown exited nonzero: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not stop within 30s of SIGTERM; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "stopped") {
		t.Errorf("shutdown did not log completion:\n%s", stderr.String())
	}
	if temps, _ := filepath.Glob(filepath.Join(cacheDir, "put-*")); len(temps) != 0 {
		t.Errorf("shutdown stranded cache temp files: %v", temps)
	}
}

// TestDaemonFlagValidation pins fail-fast flag checking: bad combinations
// exit 2 with a one-line error and never bind a socket.
func TestDaemonFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real binary; skipped in -short")
	}
	bin := buildSimd(t)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"negative shards", []string{"-shards", "-1"}},
		{"oversubscribed", []string{"-workers", "64", "-shards", "64"}},
		{"negative queue", []string{"-queue", "-5"}},
		{"zero drain", []string{"-drain", "0s"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cmd := exec.Command(bin, tc.args...)
			cmd.Stderr = &stderr
			err := cmd.Run()
			var exit *exec.ExitError
			if !errors.As(err, &exit) || exit.ExitCode() != 2 {
				t.Fatalf("%v: err %v, want exit code 2; stderr:\n%s", tc.args, err, stderr.String())
			}
			if msg := stderr.String(); strings.Count(msg, "\n") != 1 {
				t.Errorf("want a one-line error, got:\n%s", msg)
			}
		})
	}
}
