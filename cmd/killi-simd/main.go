// killi-simd is the resident simulation service: a daemon that keeps the
// content-addressed result cache, the worker pool, and the metrics document
// warm across many requests instead of paying process start-up per sweep.
//
// It serves the internal/simserver JSON API:
//
//	POST /v1/jobs     submit a run, sweep, or fleet-campaign job, block for
//	                  the result. Identical in-flight jobs coalesce into one
//	                  simulation; completed jobs are served from the cache. A
//	                  full queue answers 429 with a Retry-After hint.
//	GET  /v1/jobs/{key}  re-fetch a completed job by its content-address key
//	                  from the bounded retained registry (-retain-jobs /
//	                  -retain-ttl); 404 once evicted.
//	GET  /v1/observe  stream one run's DFH training dynamics as Server-Sent
//	                  Events (per-epoch samples, state populations, resets).
//	GET  /v1/campaign run a fleet Monte Carlo campaign (internal/campaign)
//	                  and stream its per-die progress as Server-Sent Events,
//	                  ending with the aggregated yield/Vmin result.
//	GET  /healthz     liveness and queue statistics.
//	GET  /metrics     live job counters and sweep progress (expvar JSON).
//	GET  /debug/vars  the standard expvar page.
//
// Concurrency is budgeted against the machine: -workers jobs execute at
// once, each simulating with -shards engine shards, and the default worker
// count is GOMAXPROCS/shards so the product never oversubscribes. SIGINT or
// SIGTERM begins a graceful shutdown: the listener stops accepting, queued
// and running jobs drain (bounded by -drain), the cache is swept of
// temporaries, and the metrics listener closes. A drain that exceeds its
// budget cancels in-flight simulations at their next kernel boundary and
// exits nonzero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"killi/internal/experiments"
	"killi/internal/obs"
	"killi/internal/simserver"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "localhost:8070", "address to serve the job API on")
	cacheDir := flag.String("cache", "", "directory for the content-addressed result cache shared by all jobs (empty = every job simulates)")
	shards := flag.Int("shards", 1, "engine shards per simulation; results are bit-identical at any value")
	workers := flag.Int("workers", 0, "concurrently executing jobs (0 = GOMAXPROCS/shards)")
	queue := flag.Int("queue", 0, "jobs allowed to wait beyond the running ones before 429 (0 = 4x workers)")
	metricsAddr := flag.String("metrics-addr", "", "serve the metrics document on a second address too (e.g. localhost:8060); the job API always has /metrics")
	drain := flag.Duration("drain", time.Minute, "how long shutdown waits for queued and running jobs before cancelling them")
	retainJobs := flag.Int("retain-jobs", 0, "completed jobs kept re-fetchable via GET /v1/jobs/{key} (0 = default 1024, negative disables retention)")
	retainTTL := flag.Duration("retain-ttl", 0, "age bound on retained jobs (0 = default 10m, negative disables age eviction)")
	flag.Parse()

	// Fail on flag nonsense before binding sockets or starting workers.
	// workers=0 means "auto", which ValidateFlags spells -1.
	vworkers := *workers
	if vworkers == 0 {
		vworkers = -1
	}
	if err := experiments.ValidateFlags(1, vworkers, *shards, runtime.GOMAXPROCS(0)); err != nil {
		fmt.Fprintf(os.Stderr, "killi-simd: %v\n", err)
		return 2
	}
	if *queue < 0 {
		fmt.Fprintf(os.Stderr, "killi-simd: -queue must be >= 0, got %d\n", *queue)
		return 2
	}
	if *drain <= 0 {
		fmt.Fprintf(os.Stderr, "killi-simd: -drain must be positive, got %v\n", *drain)
		return 2
	}

	m := obs.NewMetrics()
	if *metricsAddr != "" {
		got, err := m.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "killi-simd: -metrics-addr: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "killi-simd: metrics at http://%s/metrics\n", got)
	}

	svc, err := simserver.New(simserver.Config{
		CacheDir:   *cacheDir,
		Shards:     *shards,
		Workers:    *workers,
		QueueDepth: *queue,
		Metrics:    m,
		RetainJobs: *retainJobs,
		RetainTTL:  *retainTTL,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-simd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "killi-simd: %v\n", err)
		return 1
	}
	st := svc.Stats()
	fmt.Fprintf(os.Stderr, "killi-simd: serving jobs at http://%s/v1/jobs (%d workers x %d shards, queue %d, cache %q)\n",
		ln.Addr(), st.Workers, *shards, st.Queue, *cacheDir)

	httpSrv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "killi-simd: %v\n", err)
		return 1
	}
	stop() // a second signal kills the process the default way

	// Graceful shutdown: stop accepting, let in-flight HTTP requests finish
	// as their jobs drain, then stop the pool. Both phases share one drain
	// budget; blowing it cancels simulations at their next kernel boundary.
	fmt.Fprintln(os.Stderr, "killi-simd: shutting down (draining jobs)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "killi-simd: http shutdown: %v\n", err)
		code = 1
	}
	if err := svc.Close(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "killi-simd: drain cut short: %v\n", err)
		code = 1
	}
	if err := m.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "killi-simd: metrics close: %v\n", err)
		code = 1
	}
	fmt.Fprintln(os.Stderr, "killi-simd: stopped")
	return code
}
