// killi-trace replays an external memory trace (see internal/tracefile for
// the format) through the simulated GPU under any protection scheme —
// the adoption path for users with real application traces instead of the
// built-in synthetic workloads.
//
//	killi-trace -file app.trace -scheme killi-1:64 -voltage 0.625
//
// With -dump <workload>, the tool instead writes one of the built-in
// synthetic workloads in trace format (a starting point for editing):
//
//	killi-trace -dump xsbench -requests 1000 > xsbench.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"killi/internal/experiments"
	"killi/internal/gpu"
	"killi/internal/tracefile"
	"killi/internal/workload"
)

func main() {
	file := flag.String("file", "", "trace file to replay (required unless -dump)")
	schemeName := flag.String("scheme", "killi-1:64", "protection scheme: "+experiments.SchemeSyntax())
	voltage := flag.Float64("voltage", 0.625, "L2 operating voltage (x VDD)")
	seed := flag.Uint64("seed", 1, "fault population seed")
	dump := flag.String("dump", "", "write the named synthetic workload as a trace to stdout and exit")
	requests := flag.Int("requests", 1000, "requests per CU for -dump")
	flag.Parse()

	if *dump != "" {
		w, err := workload.ByName(*dump)
		if err != nil {
			fatal(err)
		}
		if err := tracefile.Write(os.Stdout, w.Traces(gpu.DefaultConfig().CUs, *requests, *seed)); err != nil {
			fatal(err)
		}
		return
	}
	if *file == "" {
		fatal(fmt.Errorf("-file is required (or use -dump)"))
	}

	f, err := os.Open(*file)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	cfg := gpu.DefaultConfig()
	cfg.Voltage = *voltage
	cfg.FaultSeed = *seed
	traces, err := tracefile.Parse(f, cfg.CUs)
	if err != nil {
		fatal(err)
	}
	newScheme, err := experiments.SchemeFactoryByName(*schemeName)
	if err != nil {
		fatal(err)
	}
	res := gpu.New(cfg, newScheme).Run(traces)

	fmt.Printf("scheme:        %s @ %.3fxVDD\n", newScheme().Name(), *voltage)
	fmt.Printf("cycles:        %d\n", res.Cycles)
	fmt.Printf("instructions:  %d\n", res.Instructions)
	fmt.Printf("L2 accesses:   %d (misses %d, MPKI %.2f)\n", res.L2Accesses, res.L2Misses, res.MPKI())
	fmt.Printf("DRAM reads:    %d\n", res.MemAccesses)
	fmt.Printf("disabled lines:%d\n", res.DisabledLines)
	fmt.Println()
	fmt.Println(res.Counters.String())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "killi-trace: %v\n", err)
	os.Exit(1)
}
