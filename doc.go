// Package killi is a from-scratch Go reproduction of "Killi: Runtime Fault
// Classification to Deploy Low Voltage Caches without MBIST" (HPCA 2019).
//
// The repository implements the paper's full stack: real error-correction
// codecs (segmented interleaved parity, Hsiao SECDED, binary BCH up to
// 6EC7ED, Orthogonal Latin Square codes), a calibrated low-voltage SRAM
// fault model, a bit-level faulty data array, a cycle-based 8-CU GPU
// memory-hierarchy simulator with a write-through L2, the Killi mechanism
// itself (DFH state machine + on-demand ECC cache), the paper's comparison
// baselines (SECDED/DECTED per line, FLAIR, MS-ECC), and the closed-form
// coverage/area/power models — with a regeneration path for every figure
// and table in the paper's evaluation.
//
// Entry points:
//
//	internal/killi       the mechanism (protection.Scheme + write-back variant)
//	internal/gpu         the simulator
//	cmd/killi-*          figure/table regeneration binaries
//	examples/*           runnable walkthroughs
//	bench_test.go        one benchmark per paper figure/table
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// versus published results.
package killi
