// Workload study: run one memory-bound and one compute-bound workload
// against every protection scheme at 0.625×VDD, printing the Figure 4/5
// style comparison for the pair.
//
//	go run ./examples/workloadstudy
package main

import (
	"context"
	"fmt"
	"os"

	"killi/internal/experiments"
)

func main() {
	cfg := experiments.Config{
		Voltage:       0.625,
		RequestsPerCU: 6000,
		Seed:          3,
		Workloads:     []string{"nekbone", "xsbench"},
	}
	rows, err := experiments.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workloadstudy: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rows {
		fmt.Printf("== %s (%s): baseline %d cycles, %.2f MPKI\n",
			r.Workload, r.Class, r.BaselineCycles, r.BaselineMPKI)
		fmt.Printf("   %-14s %-12s %-10s %-10s\n", "scheme", "normalized", "MPKI", "disabled")
		for _, name := range r.SchemeNames() {
			fmt.Printf("   %-14s %-12.4f %-10.2f %-10d\n",
				name, r.Normalized[name], r.MPKI[name], r.Disabled[name])
		}
		fmt.Println()
	}
	fmt.Println("Compute-bound kernels hide Killi's training misses behind arithmetic;")
	fmt.Println("memory-bound kernels expose them, and shrinking the ECC cache from 1:16")
	fmt.Println("to 1:256 trades area for exactly that exposure (paper Figures 4-5).")
}
