// Quickstart: wrap the simulated GPU L2 with Killi, run one workload at
// low voltage, and print what the runtime fault classification did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"killi/internal/gpu"
	"killi/internal/killi"
	"killi/internal/protection"
	"killi/internal/workload"
)

func main() {
	// The paper's Table 3 GPU, with the L2 data array undervolted to
	// 0.625×VDD while everything else stays at nominal.
	cfg := gpu.DefaultConfig()
	cfg.Voltage = 0.625

	// Killi with a 1:64 ECC cache (one ECC entry per 64 L2 lines). The
	// system takes a factory — it builds one scheme instance per L2 bank.
	sys := gpu.New(cfg, func() protection.Scheme {
		return killi.New(killi.Config{Ratio: 64})
	})

	// One of the ten workload proxies: XSBench-style random table lookups.
	w, err := workload.ByName("xsbench")
	if err != nil {
		panic(err)
	}
	res := sys.Run(w.Traces(cfg.CUs, 5000, 42))

	fmt.Printf("workload:            %s (%s)\n", w.Name, w.Class)
	fmt.Printf("cycles:              %d\n", res.Cycles)
	fmt.Printf("instructions:        %d\n", res.Instructions)
	fmt.Printf("L2 MPKI:             %.2f\n", res.MPKI())
	occ, entries, _ := sys.ECCStats()
	fmt.Printf("ECC cache entries:   %d (occupied at end: %d)\n", entries, occ)
	fmt.Printf("lines disabled:      %d of %d\n", res.DisabledLines, cfg.L2Bytes/cfg.LineBytes)
	fmt.Println()
	fmt.Println("Killi classification activity:")
	for _, name := range []string{
		"killi.dfh_b'01_to_b'00",
		"killi.dfh_b'01_to_b'10",
		"killi.dfh_b'01_to_b'11",
		"killi.corrected_reads",
		"killi.eviction_trainings",
		"killi.ecc_contention_evictions",
		"l2.error_misses",
		"l2.silent_data_corruption",
	} {
		fmt.Printf("  %-34s %d\n", name, res.Counters.Get(name))
	}

	// Compare against the fault-free baseline at nominal voltage.
	base := gpu.New(gpu.DefaultConfig(), func() protection.Scheme {
		return protection.NewNone()
	}).Run(w.Traces(cfg.CUs, 5000, 42))
	fmt.Printf("\nslowdown vs fault-free nominal baseline: %.2f%%\n",
		(float64(res.Cycles)/float64(base.Cycles)-1)*100)
}
