// Write-back demo (§5.6.1): Killi on a write-back cache selects dirty-line
// protection by DFH — SECDED for fault-free lines, DECTED (in the same
// ECC cache entry) for one-fault lines — and surfaces unrecoverable dirty
// data as explicit data-loss errors instead of silent corruption.
//
//	go run ./examples/writeback
package main

import (
	"fmt"

	"killi/internal/bitvec"
	"killi/internal/faultmodel"
	"killi/internal/killi"
	"killi/internal/xrand"
)

func main() {
	const sets, ways = 256, 4
	fm := faultmodel.NewMap(xrand.New(11), faultmodel.Default(),
		sets*ways, bitvec.LineBits, 0.575, 1.0)
	c := killi.NewWriteBack(killi.WriteBackConfig{
		Sets: sets, Ways: ways, Ratio: 16, InvertedTraining: true,
	}, fm, 0.575)

	r := xrand.New(12)
	written := map[uint64]bitvec.Line{}

	// Phase 1: write a working set larger than the cache (forces dirty
	// evictions + write-backs through faulty lines).
	for i := 0; i < 4096; i++ {
		addr := uint64(r.Intn(2048)) * 64
		var l bitvec.Line
		for w := range l {
			l[w] = r.Uint64()
		}
		if err := c.Write(addr, l); err != nil {
			fmt.Printf("write %#x: %v\n", addr, err)
			continue
		}
		written[addr] = l
	}

	// Phase 2: read everything back and verify.
	verified, lost := 0, 0
	for addr, want := range written {
		got, err := c.Read(addr)
		if err != nil {
			lost++
			continue
		}
		if got != want {
			fmt.Printf("SILENT CORRUPTION at %#x\n", addr)
			continue
		}
		verified++
	}
	if err := c.Flush(); err != nil {
		fmt.Printf("flush reported: %v\n", err)
	}

	fmt.Printf("lines verified:  %d\n", verified)
	fmt.Printf("data-loss reads: %d (surfaced as errors, never silent)\n", lost)
	fmt.Println()
	fmt.Println("Write-back Killi activity at 0.575xVDD:")
	for _, name := range []string{
		"wb.writes", "wb.read_hits", "wb.read_misses", "wb.writebacks",
		"wb.corrected_reads", "wb.lines_disabled", "wb.data_loss",
		"wb.ecc_contention_evictions",
	} {
		fmt.Printf("  %-30s %d\n", name, c.Stats().Get(name))
	}
}
