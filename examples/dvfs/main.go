// DVFS demo: the paper's deployment argument, measured. A GPU alternates
// between nominal-voltage bursts and low-voltage phases; every transition
// forces pre-characterized schemes (here SECDED-per-line) to re-run MBIST
// over the whole 2 MB L2, while Killi just resets its DFH bits and keeps
// executing.
//
//	go run ./examples/dvfs
package main

import (
	"fmt"

	"killi/internal/dvfs"
	"killi/internal/gpu"
	"killi/internal/killi"
	"killi/internal/protection"
	"killi/internal/workload"
)

func main() {
	w, err := workload.ByName("lulesh")
	if err != nil {
		panic(err)
	}
	cfg := gpu.DefaultConfig()
	cfg.RefVoltage = 0.6 // the schedule's lowest point

	// A bursty schedule: race at nominal, then save power, eight times.
	var phases []dvfs.Phase
	for i := 0; i < 8; i++ {
		phases = append(phases,
			dvfs.Phase{Voltage: 1.0, Kernel: w.Traces(cfg.CUs, 1500, uint64(i))},
			dvfs.Phase{Voltage: 0.625, Kernel: w.Traces(cfg.CUs, 1500, uint64(i)+100)},
		)
	}
	mbist := dvfs.DefaultMBIST()
	fmt.Printf("MBIST pass over the 2 MB L2: %d cycles (March C-, 16 banks)\n\n",
		mbist.StallCycles(cfg.L2Bytes/cfg.LineBytes))

	for _, tc := range []struct {
		name      string
		newScheme protection.Factory
	}{
		{"secded-per-line (MBIST at every transition)",
			func() protection.Scheme { return protection.NewSECDEDPerLine() }},
		{"killi 1:64      (no MBIST, runtime DFH relearn)",
			func() protection.Scheme { return killi.New(killi.Config{Ratio: 64}) }},
	} {
		sys := gpu.New(cfg, tc.newScheme)
		// A probe instance answers NeedsMBIST; the per-bank instances the
		// system attached are interchangeable with it for that question.
		rep := dvfs.RunSchedule(sys, tc.newScheme(), mbist, phases)
		fmt.Printf("%-48s %s\n", tc.name, rep)
	}

	fmt.Println()
	fmt.Println("The MBIST stalls are pure transition latency: they delay every power-")
	fmt.Println("state change and scale with cache size. Killi pays instead with a short")
	fmt.Println("relearning period per phase, overlapped with execution (paper §1, §2.4).")
}
