// Voltage sweep: walk the L2 supply voltage from nominal down to 0.5×VDD
// and show, at each point, the fault population (Figure 2), the analytic
// classification coverage (Figure 6), and Killi's usable cache capacity.
//
//	go run ./examples/voltagesweep
package main

import (
	"fmt"

	"killi/internal/analytic"
	"killi/internal/bitvec"
	"killi/internal/faultmodel"
	"killi/internal/xrand"
)

func main() {
	m := faultmodel.Default()
	const lines = 32768 // the paper's 2 MB L2

	// One persistent fault population sampled at the lowest voltage;
	// higher voltages see monotone subsets (the silicon persistence
	// property Killi relies on).
	fm := faultmodel.NewMap(xrand.New(7), m, lines, bitvec.LineBits, 0.5, 1.0)

	fmt.Println("V/VDD   P_cell      lines:0    lines:1    lines:2+   killi-capacity%  coverage%")
	for _, v := range []float64{1.0, 0.80, 0.70, 0.675, 0.65, 0.625, 0.60, 0.575, 0.55, 0.50} {
		p := m.CellFailureProb(v, 1.0)
		zero, one, two := fm.CountAtVoltage(v)
		// Killi keeps 0- and 1-fault lines enabled; ≥2-fault lines are
		// disabled until the next DFH reset.
		capacity := float64(zero+one) / lines * 100
		fmt.Printf("%-7.3f %-11.2e %-10d %-10d %-10d %-16.2f %-10.4f\n",
			v, p, zero, one, two, capacity, analytic.KilliCoverage(p))
	}

	fmt.Println("\nReading the table:")
	fmt.Println(" - above ~0.675xVDD the array is effectively fault-free;")
	fmt.Println(" - at 0.625xVDD (the paper's operating point) >95% of lines have <2")
	fmt.Println("   faults, so Killi keeps nearly all capacity with only parity+SECDED;")
	fmt.Println(" - below 0.6xVDD multi-fault lines multiply: capacity falls, but the")
	fmt.Println("   classification coverage stays ~100% (only Killi and FLAIR do this).")
}
